"""Closed-loop drift adaptation inside the serving runtime.

The paper's answer to concept drift — monthly incremental training
plus a transfer-learning fine-tune after software updates (the 14x
false-alarm spike of section 4.3) — runs offline everywhere else in
this repo; :class:`~repro.runtime.service.MonitorService` can only hot
swap a model somebody trained elsewhere.  This module closes the loop
at serve time:

* an :class:`AdaptationController` rides along the service tick loop,
  folding every scored tick's template-id counts into a frozen
  *reference* distribution and a rolling *recent* window;
* when the cosine similarity between the two stays below a threshold
  for K consecutive checks (the section 3.3 software-update signal),
  the controller fine-tunes the live model over a bounded replay
  window of recent ticks — inline, or in a background worker process
  so ingest never stalls;
* the student is published to the artifact store as a new release and
  hot-swapped at a tick boundary through the existing journaled swap,
  so crash replay stays bitwise identical;
* the swap opens a *probation* window: if the post-swap anomaly rate
  regresses beyond ``rollback_ratio`` times the pre-drift baseline,
  the controller rolls the store back
  (:meth:`~repro.runtime.service.MonitorService.rollback`) at the next
  boundary — a poisoned fine-tune cannot take the service down.

Replay parity is the design constraint: every phase transition that
depends on the tick stream happens at *observation* time
(:meth:`AdaptationController.after_tick`, also fed by WAL replay), and
only journal-side-effect actions — launching the fine-tune, executing
the rollback — run at live tick boundaries
(:meth:`AdaptationController.before_tick`).  Replaying a journal
therefore reconstructs the controller deterministically: swaps and
rollbacks re-apply from their journal records, never from re-running
the training.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import deque
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro import telemetry
from repro.core.adaptation import (
    count_distribution_shift,
    transfer_adapt,
)
from repro.core.base import clamp_template_ids
from repro.core.incident import Incident
from repro.logs.message import (
    SyslogMessage,
    message_from_row,
    message_to_row,
)
from repro.runtime.store import ArtifactStore, StoreError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.detector import LSTMAnomalyDetector
    from repro.runtime.service import MonitorService, TickResult

#: Controller phases (JSON-safe strings; they ride in checkpoints).
PHASE_WATCHING = "watching"
PHASE_TRIGGERED = "triggered"
PHASE_TUNING = "tuning"
PHASE_PROBATION = "probation"
PHASE_ROLLBACK = "rollback"
PHASE_COOLDOWN = "cooldown"

#: ``metadata["origin"]`` stamped on releases the controller publishes.
AUTO_ADAPT_ORIGIN = "auto-adapt"

#: Version of the controller's checkpointed state layout.
ADAPT_STATE_VERSION = 1

#: CPU niceness the background fine-tune worker drops to.  Serving
#: latency beats retraining latency: on a busy (or single-core) host
#: the scheduler gives the worker only leftover cycles, so ingest
#: throughput barely dips while training merely takes longer.
WORKER_NICENESS = 10


@dataclass(frozen=True)
class AdaptConfig:
    """Knobs of the in-service adaptation control loop.

    Attributes:
        drift_threshold: cosine similarity below this counts as a
            drift breach (the paper observes < 0.4 at software
            updates; > 0.8 is normal).
        drift_checks: consecutive breaches required to trigger a
            fine-tune — debounces transient bursts.
        check_every_ticks: drift-check cadence in ticks.
        reference_ticks: ticks folded into the frozen reference
            distribution after each (re)baseline.
        recent_ticks: rolling window compared against the reference.
        replay_ticks: bounded replay window of recent ticks the
            fine-tune trains on (the paper's "about one week").
        probation_ticks: post-swap guard window length.
        rollback_ratio: roll back when the probation anomaly rate
            exceeds this multiple of the pre-drift baseline rate.
        baseline_floor: lower bound on the baseline rate inside the
            ratio test, so a silent pre-drift period cannot make the
            guard hair-triggered.
        epochs: fine-tune epochs (transfer adaptation freezes the
            lower LSTM either way).
        cooldown_ticks: ticks after a swap/rollback before drift
            checks resume (the reference rebuilds during this time).
        inline: fine-tune synchronously at the tick boundary instead
            of in a worker process — fully deterministic, used by the
            crash-replay CI drill.
        poison: deliberately corrupt every fine-tuned student before
            publishing (:func:`poison_detector`) — the rollback drill.
    """

    drift_threshold: float = 0.5
    drift_checks: int = 3
    check_every_ticks: int = 4
    reference_ticks: int = 16
    recent_ticks: int = 16
    replay_ticks: int = 48
    probation_ticks: int = 24
    rollback_ratio: float = 3.0
    baseline_floor: float = 0.02
    epochs: int = 2
    cooldown_ticks: int = 32
    inline: bool = False
    poison: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.drift_threshold < 1.0:
            raise ValueError("drift_threshold must be in (0, 1)")
        for name in (
            "drift_checks",
            "check_every_ticks",
            "reference_ticks",
            "recent_ticks",
            "replay_ticks",
            "probation_ticks",
            "epochs",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.rollback_ratio <= 0:
            raise ValueError("rollback_ratio must be positive")
        if self.baseline_floor <= 0:
            raise ValueError("baseline_floor must be positive")
        if self.cooldown_ticks < 0:
            raise ValueError("cooldown_ticks must be >= 0")

    @property
    def min_probation_ticks(self) -> int:
        """Earliest tick at which a probation failure may fire."""
        return max(2, self.probation_ticks // 4)


def poison_detector(detector: "LSTMAnomalyDetector") -> None:
    """Deterministically corrupt a detector's output layer (drill).

    Negating the output projection (weights and bias) reverses the
    logit ordering, so the rank-based anomaly score of every
    well-predicted message jumps to near the vocabulary size — the
    post-swap anomaly rate saturates and the probation guard must
    fire.  Used by ``serve --adapt-poison`` and the rollback tests.
    """
    weights = detector.model.get_weights()
    for key in list(weights):
        if key.startswith("output."):
            weights[key] = -weights[key]
    detector.model.set_weights(weights)
    telemetry.counter("adapt.poisoned_releases").inc()


def _fine_tune_worker(
    conn: "multiprocessing.connection.Connection",
    store_dir: str,
    keep_releases: int,
    teacher_release: int,
    threshold: float,
    rows: List[List[object]],
    epochs: int,
    poison: bool,
) -> None:
    """Background fine-tune entry point (child process).

    Loads the teacher from the artifact store (its weights are
    identical to the live model's — weights only ever change through
    journaled swaps), fine-tunes it on the replay-window messages,
    optionally poisons the student, publishes it as a new release and
    reports the release id (plus the child's telemetry snapshot, for
    merging) over ``conn``.  The child touches only the store — never
    the WAL, checkpoint or lock.
    """
    from repro.runtime.service import (
        detector_from_release,
        stage_release,
    )

    try:
        os.nice(WORKER_NICENESS)
    except (AttributeError, OSError):  # pragma: no cover - platform
        pass
    try:
        registry = telemetry.MetricsRegistry()
        with telemetry.use(registry):
            store = ArtifactStore(
                store_dir, keep_releases=keep_releases
            )
            teacher, _ = detector_from_release(store, teacher_release)
            messages = [message_from_row(row) for row in rows]
            student = transfer_adapt(teacher, messages, epochs=epochs)
            if poison:
                poison_detector(student)
            release = stage_release(
                store,
                student,
                threshold,
                metadata={
                    "origin": AUTO_ADAPT_ORIGIN,
                    "teacher": teacher_release,
                },
            )
        conn.send(
            {
                "ok": True,
                "release": release.release_id,
                "telemetry": registry.snapshot(),
            }
        )
    except Exception as error:  # pragma: no cover - defensive
        conn.send(
            {
                "ok": False,
                "error": f"{type(error).__name__}: {error}",
            }
        )
    finally:
        conn.close()


class AdaptationController:
    """The in-service drift→fine-tune→swap→probation state machine.

    Attach one to a :class:`~repro.runtime.service.MonitorService`
    (``service.controller = controller``) before recovery; the service
    then calls :meth:`before_tick` at every live tick boundary,
    :meth:`after_tick` after every scored tick (live and replayed
    alike) and :meth:`on_swap_applied` whenever a journaled swap is
    applied.  All tick-stream-dependent transitions happen in
    :meth:`after_tick`/:meth:`on_swap_applied`, so WAL replay
    reconstructs the controller exactly; :meth:`before_tick` only
    performs journal-side-effect actions and is never called during
    replay.

    Attributes:
        config: the :class:`AdaptConfig` driving the loop.
        phase: current phase (one of the ``PHASE_*`` constants).
        swaps: adaptation swaps applied over this controller's life.
        rollbacks: probation rollbacks applied.
    """

    def __init__(self, config: AdaptConfig) -> None:
        self.config = config
        self.phase = PHASE_WATCHING
        self.swaps = 0
        self.rollbacks = 0
        self._ticks_seen = 0
        self._last_check_tick = 0
        self._breaches = 0
        self._reference: Optional[np.ndarray] = None
        self._reference_accum: Optional[np.ndarray] = None
        self._reference_seen = 0
        self._recent: Deque[np.ndarray] = deque()
        self._replay: Deque[List[List[object]]] = deque()
        self._rate_window: Deque[Tuple[int, int]] = deque(
            maxlen=config.probation_ticks
        )
        self._normal_rate: Optional[float] = None
        self._baseline_rate = 0.0
        self._probation_release: Optional[int] = None
        self._rollback_to: Optional[int] = None
        #: Probation bookkeeping rides the shared Incident shape:
        #: ``n_anomalies``/``n_observed`` accumulate the post-swap
        #: rate, ``n_ticks`` is the elapsed guard window.
        self._probation = Incident()
        self._cooldown_left = 0
        self._worker: Optional[
            Tuple[
                "multiprocessing.process.BaseProcess",
                "multiprocessing.connection.Connection",
            ]
        ] = None

    # -- observation (identical live and during WAL replay) -------------

    def after_tick(
        self,
        service: "MonitorService",
        messages: Sequence[SyslogMessage],
        result: "TickResult",
    ) -> None:
        """Fold one scored tick into the controller's state.

        Called by the service after every tick — live ticks and
        replayed journal ticks alike — so the drift windows, replay
        buffer and probation accounting evolve identically under
        recovery.  May arm the ``triggered``/``rollback`` phases;
        never performs journal side effects itself.
        """
        self._ticks_seen += 1
        counts = self._tick_counts(service, messages)
        self._observe_counts(counts)
        anomalies, kept = self._tick_rate(service, result)
        self._rate_window.append((anomalies, kept))
        self._replay.append(
            [message_to_row(message) for message in messages]
        )
        while len(self._replay) > self.config.replay_ticks:
            self._replay.popleft()
        if self.phase == PHASE_COOLDOWN:
            self._cooldown_left -= 1
            if self._cooldown_left <= 0:
                self.phase = PHASE_WATCHING
        elif self.phase == PHASE_WATCHING:
            self._check_drift()
        elif self.phase == PHASE_PROBATION:
            self._observe_probation(anomalies, kept)

    def on_swap_applied(
        self,
        service: "MonitorService",
        release_id: int,
        previous_release: int,
    ) -> None:
        """React to a journaled swap (live apply or WAL replay).

        An adaptation swap (phase ``triggered``/``tuning``) opens the
        probation window; an armed rollback completes into cooldown;
        any other swap is an operator action — the distributions are
        no longer comparable, so the watcher rebaselines.
        """
        registry = telemetry.default_registry()
        if self.phase in (PHASE_TRIGGERED, PHASE_TUNING):
            self.phase = PHASE_PROBATION
            self._probation_release = int(release_id)
            self._rollback_to = int(previous_release)
            self._probation.reset()
            self._baseline_rate = (
                self._normal_rate
                if self._normal_rate is not None
                else self._window_rate()
            )
            self.swaps += 1
            registry.counter("adapt.swap.applied").inc()
            registry.gauge("adapt.swap.release").set(release_id)
        elif self.phase == PHASE_ROLLBACK:
            self.rollbacks += 1
            registry.counter("adapt.rollback.applied").inc()
            registry.gauge("adapt.rollback.release").set(release_id)
            self._enter_cooldown()
        elif self.phase == PHASE_PROBATION:
            # Operator swapped mid-probation; abandon the guard.
            self._enter_cooldown()
        else:
            self._rebaseline()

    # -- decisions (live tick boundaries only) ---------------------------

    def before_tick(self, service: "MonitorService") -> None:
        """Execute armed journal-side-effect actions at a boundary.

        Called by :meth:`MonitorService.process_tick` before the tick
        is journaled (and before any pending swap applies), never
        during replay — replayed journals already carry the swap and
        rollback records these actions produce.
        """
        if self.phase == PHASE_TRIGGERED:
            self._launch(service)
        elif self.phase == PHASE_TUNING:
            self._poll_worker(service)
        elif self.phase == PHASE_ROLLBACK:
            self._execute_rollback(service)

    # -- persistence -----------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot for the service checkpoint.

        A live worker cannot be checkpointed: ``tuning`` persists as
        ``triggered``, so recovery relaunches the fine-tune.
        """
        phase = self.phase
        if phase == PHASE_TUNING:
            phase = PHASE_TRIGGERED
        return {
            "version": ADAPT_STATE_VERSION,
            "phase": phase,
            "swaps": self.swaps,
            "rollbacks": self.rollbacks,
            "ticks_seen": self._ticks_seen,
            "last_check_tick": self._last_check_tick,
            "breaches": self._breaches,
            "reference": (
                None
                if self._reference is None
                else [int(v) for v in self._reference]
            ),
            "reference_accum": (
                None
                if self._reference_accum is None
                else [int(v) for v in self._reference_accum]
            ),
            "reference_seen": self._reference_seen,
            "recent": [
                [int(v) for v in counts] for counts in self._recent
            ],
            "replay": [list(tick) for tick in self._replay],
            "rate_window": [
                [int(a), int(k)] for a, k in self._rate_window
            ],
            "normal_rate": self._normal_rate,
            "baseline_rate": self._baseline_rate,
            "probation_release": self._probation_release,
            "rollback_to": self._rollback_to,
            "probation_anomalies": self._probation.n_anomalies,
            "probation_kept": self._probation.n_observed,
            "probation_elapsed": self._probation.n_ticks,
            "cooldown_left": self._cooldown_left,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot (checkpoint load)."""
        version = state.get("version")
        if version != ADAPT_STATE_VERSION:
            raise ValueError(
                f"adapt state version {version!r} is not supported "
                f"(expected {ADAPT_STATE_VERSION})"
            )
        self.phase = str(state["phase"])
        self.swaps = int(state["swaps"])
        self.rollbacks = int(state["rollbacks"])
        self._ticks_seen = int(state["ticks_seen"])
        self._last_check_tick = int(state["last_check_tick"])
        self._breaches = int(state["breaches"])
        reference = state["reference"]
        self._reference = (
            None
            if reference is None
            else np.asarray(reference, dtype=np.int64)
        )
        accum = state["reference_accum"]
        self._reference_accum = (
            None if accum is None else np.asarray(accum, dtype=np.int64)
        )
        self._reference_seen = int(state["reference_seen"])
        self._recent = deque(
            np.asarray(counts, dtype=np.int64)
            for counts in state["recent"]
        )
        self._replay = deque(
            [list(row) for row in tick] for tick in state["replay"]
        )
        self._rate_window = deque(
            ((int(a), int(k)) for a, k in state["rate_window"]),
            maxlen=self.config.probation_ticks,
        )
        normal = state["normal_rate"]
        self._normal_rate = None if normal is None else float(normal)
        self._baseline_rate = float(state["baseline_rate"])
        probation = state["probation_release"]
        self._probation_release = (
            None if probation is None else int(probation)
        )
        rollback_to = state["rollback_to"]
        self._rollback_to = (
            None if rollback_to is None else int(rollback_to)
        )
        self._probation = Incident(
            n_anomalies=int(state["probation_anomalies"]),
            n_observed=int(state["probation_kept"]),
            n_ticks=int(state["probation_elapsed"]),
        )
        self._cooldown_left = int(state["cooldown_left"])

    def close(self) -> None:
        """Terminate a live fine-tune worker, if any (shutdown)."""
        if self._worker is None:
            return
        process, conn = self._worker
        self._worker = None
        conn.close()
        if process.is_alive():
            process.terminate()
        process.join()

    # -- internals -------------------------------------------------------

    def _tick_counts(
        self,
        service: "MonitorService",
        messages: Sequence[SyslogMessage],
    ) -> np.ndarray:
        """Template-id count vector of one tick (capacity-clamped).

        The scorer already matched this exact batch, so the memoized
        ``match_ids`` call is near-free and mines nothing new.
        """
        detector = service.monitor.detector
        capacity = int(detector.vocabulary_capacity)
        ids = detector.store.match_ids(list(messages))
        clamp_template_ids(ids, capacity)
        return np.bincount(ids, minlength=capacity)

    def _tick_rate(
        self, service: "MonitorService", result: "TickResult"
    ) -> Tuple[int, int]:
        """(anomalies, kept) of one tick under the live threshold."""
        kept = np.asarray(result.kept, dtype=bool)
        scores = np.asarray(result.scores, dtype=np.float64)
        valid = kept & np.isfinite(scores)
        anomalies = int(
            (scores[valid] > service.monitor.threshold).sum()
        )
        return anomalies, int(valid.sum())

    def _window_rate(self) -> float:
        """Mean anomaly rate over the trailing rate window."""
        anomalies = sum(a for a, _ in self._rate_window)
        kept = sum(k for _, k in self._rate_window)
        return anomalies / kept if kept else 0.0

    def _observe_counts(self, counts: np.ndarray) -> None:
        """Fold one tick's counts into reference/recent windows."""
        if self._reference is None:
            if self._reference_accum is None:
                self._reference_accum = np.zeros(
                    len(counts), dtype=np.int64
                )
            if len(self._reference_accum) != len(counts):
                # A swap changed the vocabulary capacity mid-build
                # (not reachable through request_swap validation, but
                # cheap to survive): restart the accumulation.
                self._reference_accum = np.zeros(
                    len(counts), dtype=np.int64
                )
                self._reference_seen = 0
            self._reference_accum += counts
            self._reference_seen += 1
            if self._reference_seen >= self.config.reference_ticks:
                self._reference = self._reference_accum
                self._reference_accum = None
                # The trailing rate over the reference period is the
                # "normal" false-alarm baseline the probation guard
                # compares against.
                self._normal_rate = self._window_rate()
            return
        self._recent.append(counts)
        while len(self._recent) > self.config.recent_ticks:
            self._recent.popleft()

    def _check_drift(self) -> None:
        """Run the cadenced drift check; arm the trigger on K breaches."""
        if self._reference is None:
            return
        if len(self._recent) < self.config.recent_ticks:
            return
        since = self._ticks_seen - self._last_check_tick
        if since < self.config.check_every_ticks:
            return
        self._last_check_tick = self._ticks_seen
        recent_sum = np.sum(np.stack(self._recent), axis=0)
        similarity = count_distribution_shift(
            self._reference, recent_sum
        )
        if similarity < self.config.drift_threshold:
            self._breaches += 1
        else:
            self._breaches = 0
        registry = telemetry.default_registry()
        registry.gauge("adapt.trigger.consecutive_breaches").set(
            self._breaches
        )
        if self._breaches >= self.config.drift_checks:
            registry.counter("adapt.trigger.fired").inc()
            self.phase = PHASE_TRIGGERED
            self._breaches = 0

    def _observe_probation(self, anomalies: int, kept: int) -> None:
        """Accumulate one probation tick; arm rollback or pass."""
        self._probation.observe_tick(anomalies, kept)
        rate = self._probation.anomaly_rate()
        limit = self.config.rollback_ratio * max(
            self._baseline_rate, self.config.baseline_floor
        )
        registry = telemetry.default_registry()
        registry.gauge("adapt.probation.anomaly_rate").set(rate)
        registry.gauge("adapt.probation.baseline_rate").set(
            self._baseline_rate
        )
        if (
            self._probation.n_ticks >= self.config.min_probation_ticks
            and rate > limit
        ):
            registry.gauge("adapt.rollback.rate_ratio").set(
                rate / max(limit, 1e-12) * self.config.rollback_ratio
            )
            self.phase = PHASE_ROLLBACK
        elif self._probation.n_ticks >= self.config.probation_ticks:
            registry.counter("adapt.probation.passed").inc()
            self._enter_cooldown()

    def _replay_messages(self) -> List[SyslogMessage]:
        """The replay window, decoded back into messages."""
        return [
            message_from_row(row)
            for tick in self._replay
            for row in tick
        ]

    def _launch(self, service: "MonitorService") -> None:
        """Start the fine-tune for an armed trigger (live only)."""
        registry = telemetry.default_registry()
        registry.counter("adapt.fine_tune.launched").inc()
        if self.config.inline:
            from repro.runtime.service import stage_release

            student = transfer_adapt(
                service.monitor.detector,
                self._replay_messages(),
                epochs=self.config.epochs,
            )
            if self.config.poison:
                poison_detector(student)
            release = stage_release(
                service.store,
                student,
                service.monitor.threshold,
                metadata={
                    "origin": AUTO_ADAPT_ORIGIN,
                    "teacher": service.active_release,
                    "trigger_tick": self._ticks_seen,
                },
            )
            registry.counter("adapt.fine_tune.completed").inc()
            service.request_swap(release.release_id)
            registry.counter("adapt.swap.staged").inc()
            # phase stays "triggered"; the swap applies within this
            # same process_tick and on_swap_applied opens probation.
            return
        context = multiprocessing.get_context()
        receiver, sender = context.Pipe(duplex=False)
        rows = [row for tick in self._replay for row in tick]
        process = context.Process(
            target=_fine_tune_worker,
            args=(
                sender,
                str(service.store.directory),
                service.config.keep_releases,
                service.active_release,
                float(service.monitor.threshold),
                rows,
                self.config.epochs,
                self.config.poison,
            ),
            daemon=True,
        )
        process.start()
        sender.close()
        self._worker = (process, receiver)
        self.phase = PHASE_TUNING

    def _poll_worker(self, service: "MonitorService") -> None:
        """Non-blocking check on the background fine-tune (live only)."""
        assert self._worker is not None
        process, conn = self._worker
        registry = telemetry.default_registry()
        payload: Optional[Dict[str, object]] = None
        if conn.poll():
            payload = conn.recv()
        elif process.is_alive():
            return
        self._worker = None
        conn.close()
        process.join()
        if payload is None or not payload.get("ok"):
            registry.counter("adapt.fine_tune.failed").inc()
            self._enter_cooldown()
            return
        registry.counter("adapt.fine_tune.completed").inc()
        snapshot = payload.get("telemetry")
        if snapshot is not None:
            registry.merge([snapshot])
        service.request_swap(int(payload["release"]))
        registry.counter("adapt.swap.staged").inc()
        # Back to "triggered" so on_swap_applied opens probation when
        # the staged swap lands at this same boundary.
        self.phase = PHASE_TRIGGERED

    def _execute_rollback(self, service: "MonitorService") -> None:
        """Apply an armed probation rollback (live only)."""
        try:
            service.rollback()
        except StoreError:
            # The predecessor was garbage-collected out of retention;
            # nothing to roll back to — stand down instead of looping.
            telemetry.counter("adapt.rollback.failed").inc()
            self._enter_cooldown()

    def _rebaseline(self) -> None:
        """Restart drift watching against the post-event distribution."""
        self._reference = None
        self._reference_accum = None
        self._reference_seen = 0
        self._recent.clear()
        self._breaches = 0
        self._normal_rate = None

    def _enter_cooldown(self) -> None:
        """Rebaseline and pause drift checks for ``cooldown_ticks``."""
        self._rebaseline()
        self._probation_release = None
        self._rollback_to = None
        self._probation.reset()
        if self.config.cooldown_ticks > 0:
            self.phase = PHASE_COOLDOWN
            self._cooldown_left = self.config.cooldown_ticks
        else:
            self.phase = PHASE_WATCHING


__all__ = [
    "ADAPT_STATE_VERSION",
    "AUTO_ADAPT_ORIGIN",
    "AdaptConfig",
    "AdaptationController",
    "PHASE_COOLDOWN",
    "PHASE_PROBATION",
    "PHASE_ROLLBACK",
    "PHASE_TRIGGERED",
    "PHASE_TUNING",
    "PHASE_WATCHING",
    "WORKER_NICENESS",
    "poison_detector",
]
