"""Runtime observability: metrics registry, timers and exporters.

The paper's system is judged operationally — false alarms per day,
anomalies per predictive period, month-over-month drift in the template
distribution (Fig. 3, section 5.3) — so the reproduction needs the same
continuously exported health signals, not just offline scores.  This
module is the dependency-free instrumentation layer the hot paths
(mining, training, streaming, adaptation) report into:

* :class:`Counter` — monotonically increasing event counts;
* :class:`Gauge` — last-written values (e.g. the drift similarity);
* :class:`Histogram` — fixed-bucket distributions (latencies, scores);
* :meth:`MetricsRegistry.timed` — a context manager / decorator that
  records wall-clock durations into a histogram;
* JSON and Prometheus text exporters, with a Prometheus *parser* so a
  scraped snapshot round-trips back into a registry.

A process-wide default registry backs the convenience functions
(:func:`counter`, :func:`gauge`, :func:`histogram`, :func:`timed`);
tests and benchmarks swap it with :func:`use` or
:func:`set_default_registry`.  :class:`NullRegistry` is the no-op
implementation the overhead benchmark compares against.

Counters are plain Python int adds behind one dict lookup — cheap
enough for per-tick accounting (the streaming engine publishes once
per micro-batch, never per message), and safe without locks under the
GIL-per-tick design: no instrumented path mutates a metric from two
threads concurrently.
"""

from __future__ import annotations

import contextlib
import functools
import json
import re
import time
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

#: Default histogram buckets for durations in seconds.
TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

#: Default buckets for anomaly scores (negative log-likelihoods).
SCORE_BUCKETS: Tuple[float, ...] = (
    0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0,
)

#: Default buckets for batch/tick sizes.
SIZE_BUCKETS: Tuple[float, ...] = (
    1.0, 8.0, 64.0, 256.0, 1024.0, 4096.0,
)


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        self.value += amount


class Gauge:
    """A last-written value (e.g. a similarity, a rate, a size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = float(value)

    def add(self, amount: float) -> None:
        """Add ``amount`` to the gauge's current value."""
        self.value += float(amount)


class Histogram:
    """A fixed-bucket histogram with Prometheus ``le`` semantics.

    Bucket ``i`` counts observations ``v`` with
    ``edges[i-1] < v <= edges[i]``; one implicit overflow bucket
    (``+Inf``) catches everything beyond the last edge.
    """

    __slots__ = ("name", "edges", "counts", "sum", "count")

    def __init__(
        self, name: str, edges: Sequence[float] = TIME_BUCKETS
    ) -> None:
        if not edges or list(edges) != sorted(edges):
            raise ValueError(
                f"histogram {name!r} needs ascending bucket edges"
            )
        self.name = name
        self.edges: Tuple[float, ...] = tuple(float(e) for e in edges)
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = int(np.searchsorted(self.edges, value, side="left"))
        self.counts[index] += 1
        self.sum += value
        self.count += 1

    def observe_array(self, values: np.ndarray) -> None:
        """Record a whole array in one vectorized pass."""
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        if values.size == 0:
            return
        indices = np.searchsorted(self.edges, values, side="left")
        binned = np.bincount(indices, minlength=len(self.counts))
        for i, n in enumerate(binned):
            self.counts[i] += int(n)
        self.sum += float(values.sum())
        self.count += int(values.size)


class _Timed:
    """Context manager / decorator recording durations in a histogram.

    The registry is resolved lazily (at ``__enter__`` / call time, not
    at construction) so a decorator applied at import time still
    reports into whatever registry is active when the function runs.
    """

    def __init__(
        self,
        name: str,
        registry: Optional["MetricsRegistry"] = None,
        edges: Sequence[float] = TIME_BUCKETS,
    ) -> None:
        self._name = name
        self._registry = registry
        self._edges = edges
        self._start = 0.0

    def _histogram(self) -> Histogram:
        registry = self._registry or default_registry()
        return registry.histogram(self._name, edges=self._edges)

    def __enter__(self) -> "_Timed":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._histogram().observe(time.perf_counter() - self._start)

    def __call__(self, function: Callable) -> Callable:
        @functools.wraps(function)
        def wrapper(*args: object, **kwargs: object) -> object:
            start = time.perf_counter()
            try:
                return function(*args, **kwargs)
            finally:
                self._histogram().observe(time.perf_counter() - start)

        return wrapper


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Metrics are created on first access and live for the registry's
    lifetime; names are unique across kinds (asking for a counter
    named like an existing gauge raises).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- access -----------------------------------------------------------

    def _check_kind(self, name: str, kind: Dict) -> None:
        for other in (self._counters, self._gauges, self._histograms):
            if other is not kind and name in other:
                raise ValueError(
                    f"metric {name!r} already exists with another kind"
                )

    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created on first access."""
        metric = self._counters.get(name)
        if metric is None:
            self._check_kind(name, self._counters)
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, created on first access."""
        metric = self._gauges.get(name)
        if metric is None:
            self._check_kind(name, self._gauges)
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, edges: Sequence[float] = TIME_BUCKETS
    ) -> Histogram:
        """The histogram named ``name``, created on first access."""
        metric = self._histograms.get(name)
        if metric is None:
            self._check_kind(name, self._histograms)
            metric = self._histograms[name] = Histogram(name, edges)
        return metric

    def timed(
        self, name: str, edges: Sequence[float] = TIME_BUCKETS
    ) -> _Timed:
        """Time a block (``with``) or a function (decorator)."""
        return _Timed(name, registry=self, edges=edges)

    def reset(self) -> None:
        """Drop every metric (a fresh registry without re-wiring)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def merge(self, snapshots: Sequence[Dict]) -> "MetricsRegistry":
        """Fold :meth:`snapshot` dicts into this registry, in order.

        The fleet coordinator uses this to aggregate per-shard worker
        registries into one fleet view; ``repro telemetry --merge``
        exposes the same fold for multi-run aggregation.  Semantics per
        kind: counters *sum* (event counts are additive across shards),
        gauges are *last write wins* (later snapshots overwrite), and
        histograms merge *bucket-wise* (their edges must agree — there
        is no meaningful rebinning between different bucket layouts).

        Returns this registry, so merges chain.
        """
        for snap in snapshots:
            for name, value in snap.get("counters", {}).items():
                self.counter(name).inc(int(value))
            for name, value in snap.get("gauges", {}).items():
                self.gauge(name).set(float(value))
            for name, data in snap.get("histograms", {}).items():
                edges = [float(e) for e in data["edges"]]
                metric = self.histogram(name, edges=edges)
                if list(metric.edges) != edges:
                    raise ValueError(
                        f"histogram {name!r} bucket edges differ "
                        "between snapshots; cannot merge bucket-wise"
                    )
                for index, count in enumerate(data["counts"]):
                    metric.counts[index] += int(count)
                metric.sum += float(data["sum"])
                metric.count += int(data["count"])
        return self

    # -- exporters --------------------------------------------------------

    def snapshot(self) -> Dict:
        """A JSON-ready dict of every metric's current state."""
        return {
            "counters": {
                name: metric.value
                for name, metric in sorted(self._counters.items())
            },
            "gauges": {
                name: metric.value
                for name, metric in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "edges": list(metric.edges),
                    "counts": list(metric.counts),
                    "sum": metric.sum,
                    "count": metric.count,
                }
                for name, metric in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent: int = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent)

    def to_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format.

        The ``# HELP`` line carries the registry's dotted metric name,
        which is what lets :func:`from_prometheus` reconstruct an
        identical registry from the exported text.
        """
        lines: List[str] = []
        for name, metric in sorted(self._counters.items()):
            prom = _prom_name(name)
            lines.append(f"# HELP {prom} {name}")
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {_format_value(metric.value)}")
        for name, metric in sorted(self._gauges.items()):
            prom = _prom_name(name)
            lines.append(f"# HELP {prom} {name}")
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_format_value(metric.value)}")
        for name, metric in sorted(self._histograms.items()):
            prom = _prom_name(name)
            lines.append(f"# HELP {prom} {name}")
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for edge, count in zip(metric.edges, metric.counts):
                cumulative += count
                lines.append(
                    f'{prom}_bucket{{le="{_format_value(edge)}"}} '
                    f"{cumulative}"
                )
            lines.append(
                f'{prom}_bucket{{le="+Inf"}} {metric.count}'
            )
            lines.append(f"{prom}_sum {_format_value(metric.sum)}")
            lines.append(f"{prom}_count {metric.count}")
        return "\n".join(lines) + "\n"


def _prom_name(name: str) -> str:
    """Sanitize a dotted metric name for Prometheus exposition."""
    return "repro_" + re.sub(r"[^a-zA-Z0-9_]", "_", name)


def _format_value(value: float) -> str:
    """Format a sample value so parse → re-export is byte-stable."""
    if isinstance(value, int):
        return str(value)
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e16:
        return str(int(as_float))
    return repr(as_float)


_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{le="(?P<le>[^"]+)"\})?'
    r"\s+(?P<value>\S+)$"
)


def from_prometheus(text: str) -> MetricsRegistry:
    """Rebuild a registry from :meth:`MetricsRegistry.to_prometheus`.

    Uses the ``# HELP`` lines to recover the original dotted names, so
    ``from_prometheus(r.to_prometheus()).to_prometheus()`` is
    byte-identical to ``r.to_prometheus()`` and the snapshots match.
    """
    registry = MetricsRegistry()
    help_names: Dict[str, str] = {}
    types: Dict[str, str] = {}
    buckets: Dict[str, List[Tuple[float, int]]] = {}
    sums: Dict[str, float] = {}
    totals: Dict[str, int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            prom, _, original = rest.partition(" ")
            help_names[prom] = original or prom
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            prom, _, kind = rest.partition(" ")
            types[prom] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable prometheus sample: {line!r}")
        sample, le, raw = match.group("name", "le", "value")
        value = float(raw)
        if le is not None:
            base = sample[: -len("_bucket")]
            if le != "+Inf":
                buckets.setdefault(base, []).append(
                    (float(le), int(value))
                )
            continue
        if sample.endswith("_sum") and sample[: -4] in types:
            sums[sample[: -4]] = value
            continue
        if sample.endswith("_count") and sample[: -6] in types:
            totals[sample[: -6]] = int(value)
            continue
        kind = types.get(sample, "gauge")
        name = help_names.get(sample, sample)
        if kind == "counter":
            registry.counter(name).inc(int(value))
        else:
            registry.gauge(name).set(value)
    for prom, pairs in buckets.items():
        name = help_names.get(prom, prom)
        pairs.sort(key=lambda pair: pair[0])
        edges = [edge for edge, _ in pairs]
        histogram = registry.histogram(name, edges=edges)
        previous = 0
        for index, (_, cumulative) in enumerate(pairs):
            histogram.counts[index] = cumulative - previous
            previous = cumulative
        histogram.count = totals.get(prom, previous)
        histogram.counts[-1] = histogram.count - previous
        histogram.sum = sums.get(prom, 0.0)
    return registry


# -- no-op implementation (overhead baseline) ---------------------------


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def observe_array(self, values: np.ndarray) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """A registry whose metrics discard every write.

    The overhead baseline: running the instrumented hot paths under a
    ``NullRegistry`` measures the cost of the *calls*, under a real
    :class:`MetricsRegistry` the cost of calls plus accounting — the
    streaming perf suite pins their difference below 3%.
    """

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null", (1.0,))

    def counter(self, name: str) -> Counter:
        """The shared no-op counter (every write is discarded)."""
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        """The shared no-op gauge (every write is discarded)."""
        return self._null_gauge

    def histogram(
        self, name: str, edges: Sequence[float] = TIME_BUCKETS
    ) -> Histogram:
        """The shared no-op histogram (every write is discarded)."""
        return self._null_histogram

    def snapshot(self) -> Dict:
        """An empty snapshot: null metrics record nothing."""
        return {"counters": {}, "gauges": {}, "histograms": {}}


# -- process-wide default registry --------------------------------------

_default_registry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry instrumented code reports into."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry, returning the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


@contextlib.contextmanager
def use(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope the default registry to a block (tests, benchmarks)."""
    previous = set_default_registry(registry)
    try:
        yield registry
    finally:
        set_default_registry(previous)


def counter(name: str) -> Counter:
    """``default_registry().counter(name)``."""
    return _default_registry.counter(name)


def gauge(name: str) -> Gauge:
    """``default_registry().gauge(name)``."""
    return _default_registry.gauge(name)


def histogram(
    name: str, edges: Sequence[float] = TIME_BUCKETS
) -> Histogram:
    """``default_registry().histogram(name, edges)``."""
    return _default_registry.histogram(name, edges)


def timed(
    name: str, edges: Sequence[float] = TIME_BUCKETS
) -> _Timed:
    """Time a block or function against the *current* default registry."""
    return _Timed(name, registry=None, edges=edges)
