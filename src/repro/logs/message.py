"""Syslog message data model.

A :class:`SyslogMessage` is one line of router log output, as produced
by a vPE (or, in this reproduction, by the fleet simulator).  The model
follows the classic BSD syslog structure: a facility, a severity, an
originating host, a reporting process, and free-form text.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


class Severity(enum.IntEnum):
    """BSD syslog severity levels (RFC 3164 section 4.1.1)."""

    EMERGENCY = 0
    ALERT = 1
    CRITICAL = 2
    ERROR = 3
    WARNING = 4
    NOTICE = 5
    INFO = 6
    DEBUG = 7

    @property
    def is_actionable(self) -> bool:
        """Severities at WARNING or worse usually feed ticket rules."""
        return self <= Severity.WARNING


class Facility(enum.IntEnum):
    """A subset of syslog facilities relevant to router logs."""

    KERNEL = 0
    USER = 1
    DAEMON = 3
    AUTH = 4
    SYSLOG = 5
    NTP = 12
    LOCAL0 = 16
    LOCAL1 = 17
    LOCAL2 = 18
    LOCAL3 = 19
    LOCAL4 = 20
    LOCAL5 = 21
    LOCAL6 = 22
    LOCAL7 = 23


def encode_priority(facility: Facility, severity: Severity) -> int:
    """Combine facility and severity into the RFC 3164 PRI value."""
    return int(facility) * 8 + int(severity)


def decode_priority(priority: int) -> "tuple[Facility, Severity]":
    """Split an RFC 3164 PRI value back into facility and severity."""
    if not 0 <= priority <= 191:
        raise ValueError(f"PRI must be in [0, 191], got {priority}")
    return Facility(priority // 8), Severity(priority % 8)


@dataclass(frozen=True)
class SyslogMessage:
    """One syslog line.

    Attributes:
        timestamp: POSIX seconds when the message was emitted.
        host: originating device name, e.g. ``"vpe07"``.
        process: reporting daemon, e.g. ``"rpd"`` or ``"chassisd"``.
        text: the free-form message body.
        severity: syslog severity.
        facility: syslog facility.
        template_id: once template mining has run, the id of the mined
            template this message matches; ``None`` for raw messages.
    """

    timestamp: float
    host: str
    process: str
    text: str
    severity: Severity = Severity.INFO
    facility: Facility = Facility.DAEMON
    template_id: Optional[int] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError(f"negative timestamp: {self.timestamp}")
        if not self.host:
            raise ValueError("host must be non-empty")
        if not self.process:
            raise ValueError("process must be non-empty")

    @property
    def priority(self) -> int:
        """The RFC 3164 PRI value for this message."""
        return encode_priority(self.facility, self.severity)

    def with_template(self, template_id: int) -> "SyslogMessage":
        """Return a copy annotated with a mined template id."""
        return SyslogMessage(
            timestamp=self.timestamp,
            host=self.host,
            process=self.process,
            text=self.text,
            severity=self.severity,
            facility=self.facility,
            template_id=template_id,
        )

    def __str__(self) -> str:
        return (
            f"<{self.priority}> {self.host} {self.process}: {self.text}"
        )


def message_to_dict(message: SyslogMessage) -> dict:
    """A JSON-ready dict for one message (trace files).

    The key set matches the ``trace/<vpe>.jsonl`` line format written
    by the CLI.  The runtime WAL uses the positional
    :func:`message_to_row` codec instead, which trades self-describing
    keys for encode speed on the ingest hot path.
    """
    return {
        "ts": message.timestamp,
        "host": message.host,
        "proc": message.process,
        "sev": int(message.severity),
        "fac": int(message.facility),
        "text": message.text,
    }


def message_from_dict(raw: dict) -> SyslogMessage:
    """Rebuild a message from :func:`message_to_dict` output."""
    return SyslogMessage(
        timestamp=raw["ts"],
        host=raw["host"],
        process=raw["proc"],
        text=raw["text"],
        severity=Severity(raw["sev"]),
        facility=Facility(raw["fac"]),
    )


def message_columns(
    messages: "Sequence[SyslogMessage]",
) -> "Tuple[np.ndarray, List[str]]":
    """Column-major ``(timestamps, hosts)`` for one batch of messages.

    The single array build shared by the streaming scorer's tick
    ingest and the runtime WAL's arena tick codec: one float64 pass
    over the timestamps plus the host list, instead of each consumer
    re-walking the message objects field by field.
    """
    n = len(messages)
    times = np.fromiter(
        (message.timestamp for message in messages),
        dtype=np.float64,
        count=n,
    )
    hosts = [message.host for message in messages]
    return times, hosts


def message_to_row(message: SyslogMessage) -> list:
    """A positional ``[ts, host, proc, sev, fac, text]`` JSON row.

    The runtime WAL journals every ingested tick, so its codec sits on
    the hot path; positional rows encode ~40% faster and ~30% smaller
    than the keyed :func:`message_to_dict` form used by trace files.
    """
    return [
        message.timestamp,
        message.host,
        message.process,
        int(message.severity),
        int(message.facility),
        message.text,
    ]


def message_from_row(row: list) -> SyslogMessage:
    """Rebuild a message from :func:`message_to_row` output."""
    timestamp, host, process, severity, facility, text = row
    return SyslogMessage(
        timestamp=timestamp,
        host=host,
        process=process,
        text=text,
        severity=Severity(severity),
        facility=Facility(facility),
    )
