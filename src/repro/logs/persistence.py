"""Serialization for template stores.

A production deployment mines templates continuously and must survive
process restarts with ids intact (models are keyed on them).  This
module round-trips a :class:`~repro.logs.templates.TemplateStore`
through a JSON document.
"""

from __future__ import annotations

import json
from typing import Union

from repro.logs.signature_tree import WILDCARD
from repro.logs.templates import Template, TemplateStore

_FORMAT_VERSION = 1
#: JSON has no tuple/None-in-list ambiguity issue, but wildcards need a
#: marker that cannot collide with a real token (tokens never contain
#: whitespace, so a space-bearing marker is safe).
_WILDCARD_MARKER = "\x00wildcard\x00"


def store_to_json(store: TemplateStore) -> str:
    """Serialize a fitted store (templates and ids) to JSON."""
    if not store.fitted:
        raise ValueError("cannot serialize an unfitted TemplateStore")
    payload = {
        "version": _FORMAT_VERSION,
        "merge_threshold": store._tree.merge_threshold,
        "templates": [
            {
                "id": template.template_id,
                "process": template.process,
                "support": template.support,
                "signature": [
                    _WILDCARD_MARKER if token is WILDCARD else token
                    for token in template.signature
                ],
            }
            for template in store.templates()
        ],
    }
    return json.dumps(payload)


def store_from_json(document: Union[str, bytes]) -> TemplateStore:
    """Rebuild a store serialized by :func:`store_to_json`.

    The rebuilt store matches exactly like the original: the signature
    tree is reconstructed from the stored signatures, and template ids
    are preserved.
    """
    payload = json.loads(document)
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported template-store format version: {version!r}"
        )
    store = TemplateStore(
        merge_threshold=payload["merge_threshold"]
    )
    templates = []
    for entry in payload["templates"]:
        signature = tuple(
            WILDCARD if token == _WILDCARD_MARKER else token
            for token in entry["signature"]
        )
        templates.append(
            Template(
                template_id=entry["id"],
                process=entry["process"],
                signature=signature,
                support=entry["support"],
            )
        )
    templates.sort(key=lambda template: template.template_id)
    expected = list(range(1, len(templates) + 1))
    if [t.template_id for t in templates] != expected:
        raise ValueError("template ids must be dense starting at 1")
    store._templates = templates
    store._index = {
        (template.process, template.signature): template.template_id
        for template in templates
    }
    # Rebuild the signature tree so lookup() works: insert one
    # representative per signature (wildcards render as placeholder
    # tokens that re-wildcard on insertion is NOT guaranteed, so the
    # leaf is seeded directly).
    tree = store._tree
    for template in templates:
        leaf = tree._leaf_for(
            template.process,
            [
                token if token is not WILDCARD else "0"
                for token in template.signature
            ],
        )
        leaf.signatures.append(template.signature)
        leaf.supports.append(template.support)
    store._fitted = True
    return store
