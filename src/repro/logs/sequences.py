"""Windowing template streams into LSTM training samples.

Section 4.2: each log is represented as a tuple ``(m_i, t_i - t_{i-1})``
— the template id plus the gap to the previous message — and the model
is trained to predict ``m_{k+1}`` from the previous ``k`` tuples.  This
module turns an annotated message stream into those samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.logs.message import SyslogMessage

#: Gap values are log-compressed into coarse buckets so the model sees a
#: small discrete timing signal rather than a raw float.  Bucket edges in
#: seconds: <1s, <10s, <1min, <10min, <1h, >=1h.
GAP_BUCKET_EDGES: Tuple[float, ...] = (1.0, 10.0, 60.0, 600.0, 3600.0)
N_GAP_BUCKETS: int = len(GAP_BUCKET_EDGES) + 1


def gap_bucket(gap_seconds: float) -> int:
    """Map an inter-message gap to its discrete bucket index."""
    if gap_seconds < 0:
        raise ValueError(f"negative gap: {gap_seconds}")
    for index, edge in enumerate(GAP_BUCKET_EDGES):
        if gap_seconds < edge:
            return index
    return len(GAP_BUCKET_EDGES)


@dataclass(frozen=True)
class TemplateEvent:
    """One element of a template stream: ``(template id, gap bucket)``."""

    timestamp: float
    template_id: int
    gap_bucket: int


def events_from_messages(
    messages: Sequence[SyslogMessage],
) -> List[TemplateEvent]:
    """Convert annotated messages into a template-event stream.

    Messages must be template-annotated (via ``TemplateStore.transform``)
    and sorted by timestamp; the first message gets the largest gap
    bucket (it follows "nothing").
    """
    events: List[TemplateEvent] = []
    previous_time: float = None  # type: ignore[assignment]
    for message in messages:
        if message.template_id is None:
            raise ValueError(
                "message lacks a template id; run TemplateStore.transform"
            )
        if previous_time is not None and message.timestamp < previous_time:
            raise ValueError("messages must be sorted by timestamp")
        gap = (
            N_GAP_BUCKETS - 1
            if previous_time is None
            else gap_bucket(message.timestamp - previous_time)
        )
        events.append(
            TemplateEvent(
                timestamp=message.timestamp,
                template_id=message.template_id,
                gap_bucket=gap,
            )
        )
        previous_time = message.timestamp
    return events


class SequenceWindower:
    """Slide a length-``k`` window over a template stream.

    Produces ``(context, target)`` pairs where ``context`` is the
    ``k × 2`` array of ``(template_id, gap_bucket)`` tuples and
    ``target`` is the next template id — the multi-class label the LSTM
    predicts.
    """

    def __init__(self, window: int = 10) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window

    def windows(
        self, events: Sequence[TemplateEvent]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(contexts, targets, target_times)`` arrays.

        ``contexts`` has shape ``(n, window, 2)``; ``targets`` and
        ``target_times`` have shape ``(n,)``.  ``target_times`` carries
        the timestamp of each predicted message so detections can be
        placed on the trace timeline.
        """
        ids = np.fromiter(
            (event.template_id for event in events),
            dtype=np.int64,
            count=len(events),
        )
        gaps = np.fromiter(
            (event.gap_bucket for event in events),
            dtype=np.int64,
            count=len(events),
        )
        times = np.fromiter(
            (event.timestamp for event in events),
            dtype=np.float64,
            count=len(events),
        )
        return self._assemble(ids, gaps, times)

    def windows_from_arrays(
        self, ids: np.ndarray, times: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Array-first fast path: window ``(ids, timestamps)`` directly.

        Equivalent to :meth:`windows_from_messages` on an annotated
        stream, but without constructing per-message event objects:
        gap buckets are computed for all messages in one
        ``searchsorted`` over the timestamp deltas.
        """
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        times = np.ascontiguousarray(times, dtype=np.float64)
        if ids.shape != times.shape or ids.ndim != 1:
            raise ValueError(
                "ids and times must be equal-length 1-d arrays"
            )
        gaps = np.empty(ids.size, dtype=np.int64)
        if ids.size:
            deltas = np.diff(times)
            if deltas.size and deltas.min() < 0:
                raise ValueError("messages must be sorted by timestamp")
            # First message follows "nothing": largest bucket.
            gaps[0] = N_GAP_BUCKETS - 1
            # searchsorted(edges, gap, side="right") == index of the
            # first edge with gap < edge, i.e. gap_bucket() vectorized.
            gaps[1:] = np.searchsorted(
                GAP_BUCKET_EDGES, deltas, side="right"
            )
        return self._assemble(ids, gaps, times)

    def _assemble(
        self, ids: np.ndarray, gaps: np.ndarray, times: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        n = ids.size - self.window
        if n <= 0:
            empty_ctx = np.empty((0, self.window, 2), dtype=np.int64)
            return (
                empty_ctx,
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        # All windows as one strided view over the (len, 2) event
        # pairs, then a single bulk copy into a fresh writable array
        # (callers clamp ids in place).  The last window is dropped:
        # its target would lie past the end of the stream.
        pairs = np.column_stack((ids, gaps))
        contexts = np.ascontiguousarray(
            np.lib.stride_tricks.sliding_window_view(
                pairs, (self.window, 2)
            )[:n, 0]
        )
        targets = ids[self.window:].copy()
        target_times = times[self.window:].copy()
        return contexts, targets, target_times

    def windows_from_messages(
        self, messages: Sequence[SyslogMessage]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Convenience: annotate-free path from messages to windows."""
        return self.windows(events_from_messages(messages))
