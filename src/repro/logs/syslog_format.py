"""RFC 3164-style wire formatting and parsing for syslog lines.

The fleet simulator emits messages through :func:`format_rfc3164` so
that the template miner is exercised on realistic raw text rather than
on pre-structured records, and :func:`parse_rfc3164` reverses the
transform for ingest.  The format is the classic BSD shape::

    <PRI>MMM DD HH:MM:SS host process: message text

Timestamps carry no year (as in RFC 3164), so the parser takes a
``year_origin`` hint; the simulator's traces are contiguous, which makes
recovery unambiguous in practice.
"""

from __future__ import annotations

import calendar
import re
import time
from typing import Optional

from repro.logs.message import SyslogMessage, decode_priority

_RFC3164_RE = re.compile(
    r"^<(?P<pri>\d{1,3})>"
    r"(?P<mon>[A-Z][a-z]{2}) {1,2}(?P<day>\d{1,2}) "
    r"(?P<time>\d{2}:\d{2}:\d{2}) "
    r"(?P<host>\S+) "
    r"(?P<process>[^:\s]+): "
    r"(?P<text>.*)$"
)

_MONTH_ABBR = {
    abbr: index
    for index, abbr in enumerate(calendar.month_abbr)
    if abbr
}


def format_rfc3164(message: SyslogMessage) -> str:
    """Render a :class:`SyslogMessage` as an RFC 3164 line."""
    stamp = time.gmtime(message.timestamp)
    month = calendar.month_abbr[stamp.tm_mon]
    # RFC 3164 pads single-digit days with a space, not a zero.
    day = f"{stamp.tm_mday:2d}"
    clock = time.strftime("%H:%M:%S", stamp)
    return (
        f"<{message.priority}>{month} {day} {clock} "
        f"{message.host} {message.process}: {message.text}"
    )


def parse_rfc3164(
    line: str, year_origin: Optional[int] = None
) -> SyslogMessage:
    """Parse an RFC 3164 line back into a :class:`SyslogMessage`.

    Args:
        line: the raw syslog line.
        year_origin: the year to assume for the (year-less) RFC 3164
            timestamp.  Defaults to the current UTC year.

    Raises:
        ValueError: if the line does not match the RFC 3164 shape or
            carries an invalid PRI / date.
    """
    match = _RFC3164_RE.match(line)
    if match is None:
        raise ValueError(f"not an RFC 3164 syslog line: {line!r}")
    facility, severity = decode_priority(int(match.group("pri")))
    month = _MONTH_ABBR.get(match.group("mon"))
    if month is None:
        raise ValueError(f"unknown month abbreviation in {line!r}")
    year = year_origin if year_origin is not None else time.gmtime().tm_year
    hour, minute, second = (int(part) for part in
                            match.group("time").split(":"))
    timestamp = calendar.timegm(
        (year, month, int(match.group("day")), hour, minute, second, 0, 0, 0)
    )
    return SyslogMessage(
        timestamp=float(timestamp),
        host=match.group("host"),
        process=match.group("process"),
        text=match.group("text"),
        severity=severity,
        facility=facility,
    )
