"""Syslog substrate: message model, wire format, templates, sequences.

The paper consumes router syslogs in two representations:

* raw free-form text lines, as emitted by the vPE (``repro.logs.message``
  and ``repro.logs.syslog_format``);
* structured *templates* mined with a signature tree (Qiu et al.,
  IMC 2010), which turn each raw line into a ``(template_id, gap)``
  tuple consumed by the LSTM (``repro.logs.signature_tree`` and
  ``repro.logs.templates``).

``repro.logs.sequences`` windows template streams into the ``k`` inputs /
next-template supervision pairs used for language-model training.
"""

from repro.logs.message import Facility, Severity, SyslogMessage
from repro.logs.persistence import store_from_json, store_to_json
from repro.logs.sequences import SequenceWindower, TemplateEvent
from repro.logs.signature_tree import SignatureTree, tokenize
from repro.logs.syslog_format import format_rfc3164, parse_rfc3164
from repro.logs.templates import Template, TemplateStore

__all__ = [
    "Facility",
    "Severity",
    "SyslogMessage",
    "SignatureTree",
    "tokenize",
    "format_rfc3164",
    "parse_rfc3164",
    "Template",
    "TemplateStore",
    "TemplateEvent",
    "SequenceWindower",
    "store_to_json",
    "store_from_json",
]
