"""Signature-tree template mining for router syslogs.

The paper structures raw syslogs with the signature-tree approach of
Qiu et al. ("What happened in my network: mining network events from
router syslogs", IMC 2010): messages are grouped by coarse structure,
then positions whose values vary across messages of the same group are
generalized into wildcards, yielding a small set of message *templates*
(signatures).  Each raw line then maps to exactly one template id, and
the LSTM models the sequence of template ids.

This implementation builds a three-level tree:

1. level 1 — token count of the message body;
2. level 2 — the reporting process concatenated with the first token
   (router logs almost always lead with a stable event keyword);
3. leaves — a list of signatures.  A signature is a tuple of tokens
   where ``None`` marks a wildcard position.

A new message either matches an existing signature exactly (all
non-wildcard positions equal), is merged into the most similar
signature when the token-agreement ratio clears ``merge_threshold``
(disagreeing positions become wildcards), or starts a new signature.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro.logs.message import SyslogMessage

#: Wildcard marker inside a signature.
WILDCARD = None

# Token shapes that are variable by construction and should never be
# treated as stable structure: numbers, IPv4 addresses, hex words,
# interface names with unit numbers, durations.
_VARIABLE_PATTERNS = (
    re.compile(r"^\d+$"),
    re.compile(r"^\d{1,3}(\.\d{1,3}){3}(:\d+)?$"),
    re.compile(r"^0x[0-9a-fA-F]+$"),
    re.compile(r"^(ge|xe|et|ae|lo|irb|fxp)-?\d+(/\d+)*(\.\d+)?$"),
    re.compile(r"^\d+(\.\d+)?(ms|s|us|%)$"),
)


def tokenize(text: str) -> List[str]:
    """Split a message body into whitespace-delimited tokens.

    ``str.split()`` returns exactly the ``\\S+`` runs of the text and
    is several times faster than the regex scan.
    """
    return text.split()


@lru_cache(maxsize=65536)
def is_variable_token(token: str) -> bool:
    """Return True when a token is variable by shape (number, IP, ...).

    Memoized: stable structural tokens dominate real syslog streams
    and repeat endlessly, so caching the per-token regex verdict
    removes most of the classification cost of ``transform``.
    """
    for pattern in _VARIABLE_PATTERNS:
        if pattern.match(token):
            return True
    return False


Signature = Tuple[Optional[str], ...]


#: token -> its presignature entry (the token itself, or WILDCARD when
#: variable by shape).  Stable tokens dominate and repeat endlessly;
#: caching the classified *value* makes _presignature one dict hit per
#: token.  Cleared wholesale at capacity (high-cardinality variable
#: tokens — raw numbers, addresses — would otherwise grow it forever).
_TOKEN_CLASS_CACHE: Dict[str, Optional[str]] = {}
_TOKEN_CLASS_CAPACITY = 1 << 17


def _presignature(tokens: Sequence[str]) -> Signature:
    """Wildcard the by-shape-variable tokens before any merging."""
    # Per-process memoization: after fork each worker mutates its own
    # copy-on-write copy; cached values are derived from the tokens
    # alone and never cross a pipe, so workers cannot disagree.
    cache = _TOKEN_CLASS_CACHE  # repro: noqa[RPR501]
    out: List[Optional[str]] = []
    append = out.append
    for token in tokens:
        try:
            append(cache[token])
        except KeyError:
            value = WILDCARD if is_variable_token(token) else token
            if len(cache) >= _TOKEN_CLASS_CAPACITY:
                cache.clear()
            cache[token] = value
            append(value)
    return tuple(out)


def _agreement(a: Signature, b: Signature) -> float:
    """Fraction of positions on which two equal-length signatures agree.

    Wildcard positions count as agreement: a wildcard is compatible
    with any token.
    """
    if len(a) != len(b):
        raise ValueError("signatures must have equal length")
    if not a:
        return 1.0
    agree = sum(
        1
        for x, y in zip(a, b)
        if x == y or x is WILDCARD or y is WILDCARD
    )
    return agree / len(a)


def _merge(a: Signature, b: Signature) -> Signature:
    """Merge two signatures, wildcarding every disagreeing position."""
    return tuple(
        x if x == y else WILDCARD for x, y in zip(a, b)
    )


def _matches(signature: Signature, tokens: Signature) -> bool:
    """True when ``tokens`` is an instance of ``signature``."""
    return len(signature) == len(tokens) and all(
        s is WILDCARD or s == t for s, t in zip(signature, tokens)
    )


@dataclass
class _Leaf:
    """A leaf bucket holding the signatures of one (count, key) group."""

    signatures: List[Signature] = field(default_factory=list)
    supports: List[int] = field(default_factory=list)

    def insert(
        self, presig: Signature, merge_threshold: float
    ) -> Tuple[int, str]:
        """Insert a pre-signature.

        Returns the local signature index plus the outcome —
        ``"exact"`` (matched as-is), ``"merged"`` (generalized into the
        most similar signature) or ``"new"`` (started a signature).
        """
        for index, signature in enumerate(self.signatures):
            if _matches(signature, presig):
                self.supports[index] += 1
                return index, "exact"
        best_index, best_score = -1, 0.0
        for index, signature in enumerate(self.signatures):
            score = _agreement(signature, presig)
            if score > best_score:
                best_index, best_score = index, score
        if best_index >= 0 and best_score >= merge_threshold:
            self.signatures[best_index] = _merge(
                self.signatures[best_index], presig
            )
            self.supports[best_index] += 1
            return best_index, "merged"
        self.signatures.append(presig)
        self.supports.append(1)
        return len(self.signatures) - 1, "new"


class SignatureTree:
    """Incremental signature-tree miner over syslog messages.

    Args:
        merge_threshold: minimum token-agreement ratio for merging a
            message into an existing signature rather than creating a
            new one.  The paper does not publish the value; 0.7 matches
            the common setting in the log-mining literature.
    """

    def __init__(self, merge_threshold: float = 0.7) -> None:
        if not 0.0 < merge_threshold <= 1.0:
            raise ValueError(
                f"merge_threshold must be in (0, 1], got {merge_threshold}"
            )
        self.merge_threshold = merge_threshold
        self._tree: Dict[int, Dict[str, _Leaf]] = {}
        # Mining statistics, kept as plain ints so the hot insert loop
        # stays registry-free; TemplateStore publishes the deltas into
        # the process telemetry registry after each fit/extend.
        self.n_inserted = 0
        self.n_exact = 0
        self.n_merged = 0
        self.n_new = 0

    def _leaf_for(self, process: str, tokens: Sequence[str]) -> _Leaf:
        level1 = self._tree.setdefault(len(tokens), {})
        first = next(
            (tok for tok in tokens if not is_variable_token(tok)), ""
        )
        key = f"{process}\x00{first}"
        leaf = level1.get(key)
        if leaf is None:
            leaf = _Leaf()
            level1[key] = leaf
        return leaf

    def insert(self, message: SyslogMessage) -> Signature:
        """Insert one message and return the signature it landed in."""
        tokens = tokenize(message.text)
        # Classify each token exactly once: the presignature wildcards
        # the variable tokens, so the level-2 key (first stable token)
        # falls out of it for free.
        presig = _presignature(tokens)
        first = ""
        for tok, pre in zip(tokens, presig):
            if pre is not WILDCARD:
                first = tok
                break
        level1 = self._tree.setdefault(len(tokens), {})
        key = f"{message.process}\x00{first}"
        leaf = level1.get(key)
        if leaf is None:
            leaf = _Leaf()
            level1[key] = leaf
        index, outcome = leaf.insert(presig, self.merge_threshold)
        self.n_inserted += 1
        if outcome == "new":
            self.n_new += 1
        elif outcome == "merged":
            self.n_merged += 1
        else:
            self.n_exact += 1
        return leaf.signatures[index]

    def lookup(self, message: SyslogMessage) -> Optional[Signature]:
        """Return the matching signature without modifying the tree."""
        return self.lookup_presig(
            message.process, _presignature(tokenize(message.text))
        )

    def lookup_presig(
        self, process: str, presig: Signature
    ) -> Optional[Signature]:
        """Look up an already-computed presignature (the hot path).

        The level-2 key needs the first *stable* token, which is the
        first non-wildcard presignature entry — no re-tokenization.
        """
        level1 = self._tree.get(len(presig))
        if level1 is None:
            return None
        first = next(
            (entry for entry in presig if entry is not WILDCARD), ""
        )
        leaf = level1.get(f"{process}\x00{first}")
        if leaf is None:
            return None
        for signature in leaf.signatures:
            if _matches(signature, presig):
                return signature
        return None

    def signatures(self) -> List[Tuple[str, Signature, int]]:
        """Return ``(process, signature, support)`` for every signature.

        The process component of the level-2 key is returned so callers
        can attribute each signature to the daemon that emits it.
        """
        out: List[Tuple[str, Signature, int]] = []
        for level1 in self._tree.values():
            for key, leaf in level1.items():
                process = key.split("\x00", 1)[0]
                out.extend(
                    (process, signature, support)
                    for signature, support in zip(
                        leaf.signatures, leaf.supports
                    )
                )
        return out

    @property
    def n_signatures(self) -> int:
        """Total number of mined signatures."""
        return sum(
            len(leaf.signatures)
            for level1 in self._tree.values()
            for leaf in level1.values()
        )


def render_signature(signature: Signature, wildcard: str = "<*>") -> str:
    """Render a signature as human-readable text."""
    return " ".join(
        wildcard if token is WILDCARD else token for token in signature
    )
