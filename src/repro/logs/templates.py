"""Template store: stable ids for mined syslog signatures.

The LSTM treats syslogs as a language over a finite template set ``S``
(section 4.2 of the paper).  :class:`TemplateStore` assigns each mined
signature a stable integer id, maps raw messages to ids, and reserves
id 0 for out-of-vocabulary messages (templates first seen after the
store was fitted — exactly the situation after a software update).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.logs.message import SyslogMessage
from repro.logs.signature_tree import (
    Signature,
    SignatureTree,
    _presignature,
    render_signature,
    tokenize,
)

#: Template id reserved for messages that match no known signature.
UNKNOWN_TEMPLATE_ID = 0


@dataclass(frozen=True)
class Template:
    """A mined message template.

    Attributes:
        template_id: stable integer id (>= 1; 0 is the unknown id).
        process: the daemon that emits this template.
        signature: token tuple with ``None`` wildcards.
        support: number of training messages that matched.
    """

    template_id: int
    process: str
    signature: Signature
    support: int

    def render(self) -> str:
        """Human-readable ``process: template text`` rendering."""
        return f"{self.process}: {render_signature(self.signature)}"


class TemplateStore:
    """Fit a signature tree on a corpus and map messages to template ids.

    Typical use::

        store = TemplateStore()
        store.fit(training_messages)
        ids = [store.match(m) for m in stream]

    ``match`` returns :data:`UNKNOWN_TEMPLATE_ID` for messages whose
    signature was never mined; downstream models treat that id as its
    own vocabulary entry, which is what lets the detector notice brand
    new message types introduced by software updates.
    """

    #: Default capacity of the exact-string match memo.
    MEMO_CAPACITY = 100_000

    def __init__(
        self,
        merge_threshold: float = 0.7,
        memo_capacity: int = MEMO_CAPACITY,
    ) -> None:
        if memo_capacity < 0:
            raise ValueError(
                f"memo_capacity must be >= 0, got {memo_capacity}"
            )
        self._tree = SignatureTree(merge_threshold=merge_threshold)
        self._templates: List[Template] = []
        self._index: Dict[Tuple[str, Signature], int] = {}
        self._fitted = False
        # Router logs repeat heavily (~99% of lines are re-emissions of
        # a recent (process, text) pair), so an exact-string LRU in
        # front of the signature-tree walk turns almost every match
        # into one dict hit.  Invalidated whenever mining mutates the
        # tree (fit/extend), since merging may re-route old strings.
        self._memo_capacity = memo_capacity
        self._memo: "OrderedDict[Tuple[str, str], int]" = OrderedDict()
        self._memo_hits = 0
        self._memo_misses = 0
        # High-water marks of what has been published to the telemetry
        # registry, so batch-boundary publishing emits deltas only.
        self._published_hits = 0
        self._published_misses = 0
        self._published_inserted = 0
        self._published_new = 0
        self._published_merged = 0
        # Second-level memo keyed by (process, presignature).  Raw
        # texts differ in their variable tokens, but the presignature
        # collapses those to wildcards, so distinct keys here track the
        # (small) template vocabulary rather than the message stream.
        self._presig_memo: Dict[Tuple[str, Signature], int] = {}

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` (or :meth:`extend`) has run."""
        return self._fitted

    @property
    def vocabulary_size(self) -> int:
        """Number of ids a model must handle (templates + unknown id)."""
        return len(self._templates) + 1

    def fit(self, messages: Iterable[SyslogMessage]) -> "TemplateStore":
        """Mine signatures from a corpus and freeze ids.

        Calling ``fit`` twice restarts mining from scratch; use
        :meth:`extend` to add templates while preserving existing ids.
        """
        self._tree = SignatureTree(
            merge_threshold=self._tree.merge_threshold
        )
        self._templates = []
        self._index = {}
        # The tree's mining stats restart with it.
        self._published_inserted = 0
        self._published_new = 0
        self._published_merged = 0
        for message in messages:
            # Offline mining: per-message signature compare/merge
            # temporaries are the algorithm, not scoring overhead.
            self._tree.insert(message)  # repro: noqa[RPR202]
        self._rebuild_index()
        self._fitted = True
        self._publish_mining_stats(created=len(self._templates))
        return self

    def extend(self, messages: Iterable[SyslogMessage]) -> int:
        """Mine additional messages, keeping already-assigned ids stable.

        Returns the number of templates added.  Signature merging may
        generalize an existing signature in place; its id is preserved
        because ids are keyed by leaf identity order, re-derived after
        insertion.
        """
        if not self._fitted:
            self.fit(messages)
            return len(self._templates)
        before = len(self._templates)
        for message in messages:
            # Offline mining (see fit): merge temporaries are the
            # algorithm, not scoring overhead.
            self._tree.insert(message)  # repro: noqa[RPR202]
        self._rebuild_index()
        created = len(self._templates) - before
        self._publish_mining_stats(created=created)
        return created

    def _rebuild_index(self) -> None:
        known = {
            (template.process, template.signature): template.template_id
            for template in self._templates
        }
        rebuilt: List[Template] = []
        next_id = len(self._templates) + 1
        seen_ids = set()
        for process, signature, support in self._tree.signatures():
            key = (process, signature)
            template_id = known.get(key)
            if template_id is None or template_id in seen_ids:
                template_id = next_id
                next_id += 1
            seen_ids.add(template_id)
            rebuilt.append(
                Template(
                    template_id=template_id,
                    process=process,
                    signature=signature,
                    support=support,
                )
            )
        self._memo.clear()
        self._presig_memo.clear()
        rebuilt.sort(key=lambda template: template.template_id)
        # Re-number densely so vocabulary size equals template count + 1.
        self._templates = [
            Template(
                template_id=index + 1,
                process=template.process,
                signature=template.signature,
                support=template.support,
            )
            for index, template in enumerate(rebuilt)
        ]
        self._index = {
            (template.process, template.signature): template.template_id
            for template in self._templates
        }

    def match(self, message: SyslogMessage) -> int:
        """Map a message to its template id (0 when unknown).

        Matching is memoized twice in front of the signature-tree
        walk: an exact ``(process, text)`` LRU for verbatim re-logs,
        then a ``(process, presignature)`` memo that collapses the
        variable tokens and therefore hits on every re-instantiation
        of a known template.  Both memos are dropped whenever
        :meth:`fit`/:meth:`extend` mutate the tree.
        """
        if not self._fitted:
            raise RuntimeError("TemplateStore.match called before fit")
        memo = self._memo
        key = (message.process, message.text)
        cached = memo.get(key)
        if cached is not None:
            self._memo_hits += 1
            memo.move_to_end(key)
            return cached
        self._memo_misses += 1
        presig = _presignature(tokenize(message.text))
        presig_key = (message.process, presig)
        template_id = self._presig_memo.get(presig_key)
        if template_id is None:
            signature = self._tree.lookup_presig(message.process, presig)
            if signature is None:
                template_id = UNKNOWN_TEMPLATE_ID
            else:
                template_id = self._index.get(
                    (message.process, signature), UNKNOWN_TEMPLATE_ID
                )
            if self._memo_capacity:
                if len(self._presig_memo) >= self._memo_capacity:
                    self._presig_memo.clear()
                self._presig_memo[presig_key] = template_id
        if self._memo_capacity:
            memo[key] = template_id
            if len(memo) > self._memo_capacity:
                memo.popitem(last=False)
        return template_id

    @property
    def memo_stats(self) -> Tuple[int, int]:
        """Lifetime ``(hits, misses)`` of the match memo."""
        return self._memo_hits, self._memo_misses

    # -- telemetry -------------------------------------------------------

    def _publish_match_stats(self) -> None:
        """Push memo hit/miss deltas into the telemetry registry.

        Called once per batch (``match_ids`` / ``transform``), never
        per message, so matching stays registry-free on the hot path.
        """
        registry = telemetry.default_registry()
        hits, misses = self._memo_hits, self._memo_misses
        delta_hits = hits - self._published_hits
        delta_misses = misses - self._published_misses
        if delta_hits:
            registry.counter("match.memo_hits").inc(delta_hits)
            self._published_hits = hits
        if delta_misses:
            registry.counter("match.memo_misses").inc(delta_misses)
            self._published_misses = misses
        total = hits + misses
        if total:
            registry.gauge("match.memo_hit_rate").set(hits / total)

    def _publish_mining_stats(self, created: int) -> None:
        """Publish tree-mining deltas after a ``fit``/``extend``."""
        registry = telemetry.default_registry()
        tree = self._tree
        for name, value, mark in (
            ("mine.messages_inserted", tree.n_inserted,
             "_published_inserted"),
            ("mine.signatures_new", tree.n_new, "_published_new"),
            ("mine.signatures_merged", tree.n_merged,
             "_published_merged"),
        ):
            delta = value - getattr(self, mark)
            if delta > 0:
                registry.counter(name).inc(delta)
                setattr(self, mark, value)
        if created > 0:
            registry.counter("mine.templates_created").inc(created)
        registry.gauge("mine.vocabulary_size").set(
            self.vocabulary_size
        )

    def match_ids(
        self, messages: Sequence[SyslogMessage]
    ) -> np.ndarray:
        """Template ids of a whole stream as one int64 array.

        The array-first counterpart of :meth:`transform` for callers
        that only need ids (windowing, scoring): no per-message
        annotated copies are built.
        """
        ids = np.fromiter(
            (self.match(message) for message in messages),
            dtype=np.int64,
            count=len(messages),
        )
        self._publish_match_stats()
        return ids

    def transform(
        self, messages: Sequence[SyslogMessage]
    ) -> List[SyslogMessage]:
        """Return copies of ``messages`` annotated with template ids."""
        annotated = [
            message.with_template(self.match(message))
            for message in messages
        ]
        self._publish_match_stats()
        return annotated

    def template(self, template_id: int) -> Optional[Template]:
        """Look up a template by id (``None`` for the unknown id)."""
        if template_id == UNKNOWN_TEMPLATE_ID:
            return None
        index = template_id - 1
        if not 0 <= index < len(self._templates):
            raise KeyError(f"unknown template id {template_id}")
        return self._templates[index]

    def templates(self) -> List[Template]:
        """All templates, ordered by id."""
        return list(self._templates)
