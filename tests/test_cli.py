"""Tests for the repro CLI (simulate → mine → train → detect → report).

The full workflow runs once per module on a tiny trace; individual
tests assert on the artifacts each stage produces.
"""

import csv
import json
import pathlib

import pytest

from repro.cli import main, read_trace


@pytest.fixture(scope="module")
def workflow(tmp_path_factory, capsys_disabled=None):
    root = tmp_path_factory.mktemp("cli")
    trace = root / "trace"
    templates = root / "templates.json"
    model = root / "model"
    anomalies = root / "anomalies.csv"
    assert main([
        "simulate", "--out", str(trace), "--vpes", "3",
        "--months", "2", "--rate", "6", "--seed", "4",
    ]) == 0
    assert main([
        "mine", "--trace", str(trace), "--out", str(templates),
        "--max-messages", "8000",
    ]) == 0
    assert main([
        "train", "--trace", str(trace), "--templates",
        str(templates), "--out", str(model),
        "--epochs", "1", "--hidden", "12", "--window", "6",
        "--max-samples", "2000",
    ]) == 0
    assert main([
        "detect", "--trace", str(trace), "--model", str(model),
        "--out", str(anomalies),
    ]) == 0
    return {
        "trace": trace,
        "templates": templates,
        "model": model,
        "anomalies": anomalies,
    }


class TestSimulate:
    def test_trace_layout(self, workflow):
        trace = workflow["trace"]
        meta = json.loads((trace / "meta.json").read_text())
        assert len(meta["vpes"]) == 3
        for vpe in meta["vpes"]:
            assert (trace / f"{vpe}.jsonl").exists()
        assert (trace / "tickets.csv").exists()

    def test_trace_roundtrip(self, workflow):
        meta, messages, tickets = read_trace(workflow["trace"])
        assert set(messages) == set(meta["vpes"])
        assert all(
            stream == sorted(stream, key=lambda m: m.timestamp)
            for stream in messages.values()
        )
        assert tickets
        assert all(
            meta["start"] <= t.report_time for t in tickets
        )


class TestMine:
    def test_templates_json(self, workflow):
        payload = json.loads(workflow["templates"].read_text())
        assert payload["version"] == 1
        assert len(payload["templates"]) > 10


class TestTrain:
    def test_model_artifacts(self, workflow):
        model = workflow["model"]
        assert (model / "weights.npz").exists()
        config = json.loads((model / "config.json").read_text())
        assert config["window"] == 6


class TestDetect:
    def test_anomaly_rows(self, workflow):
        with open(workflow["anomalies"]) as handle:
            rows = list(csv.DictReader(handle))
        assert rows, "the trace contains faults; detection can't be empty"
        meta, _, _ = read_trace(workflow["trace"])
        for row in rows:
            assert row["vpe"] in meta["vpes"]
            assert float(row["score"]) > 0
            assert meta["start"] <= float(row["time"]) <= meta["end"]

    def test_explicit_threshold(self, workflow, tmp_path):
        out = tmp_path / "a.csv"
        assert main([
            "detect", "--trace", str(workflow["trace"]),
            "--model", str(workflow["model"]),
            "--out", str(out), "--threshold", "1e9",
        ]) == 0
        with open(out) as handle:
            assert len(list(csv.DictReader(handle))) == 0


class TestReport:
    def test_report_prints_metrics(self, workflow, capsys):
        assert main([
            "report", "--trace", str(workflow["trace"]),
            "--anomalies", str(workflow["anomalies"]),
        ]) == 0
        out = capsys.readouterr().out
        assert "precision" in out
        assert "recall" in out
        assert "false alarms / day" in out


class TestTelemetrySubcommand:
    @pytest.fixture(scope="class")
    def snapshot_path(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("telemetry") / "snapshot.json"
        assert main([
            "telemetry", "--check", "--out", str(out),
        ]) == 0
        return out

    def test_snapshot_schema(self, snapshot_path):
        snapshot = json.loads(snapshot_path.read_text())
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        for section in snapshot.values():
            assert isinstance(section, dict)
        for payload in snapshot["histograms"].values():
            assert set(payload) == {"edges", "counts", "sum", "count"}
            assert len(payload["counts"]) == len(payload["edges"]) + 1
            assert sum(payload["counts"]) == payload["count"]

    def test_snapshot_covers_every_layer(self, snapshot_path):
        snapshot = json.loads(snapshot_path.read_text())
        names = (
            list(snapshot["counters"])
            + list(snapshot["gauges"])
            + list(snapshot["histograms"])
        )
        for prefix in ("mine.", "match.", "train.", "stream.", "adapt."):
            assert any(n.startswith(prefix) for n in names), prefix

    def test_check_invariants_hold(self, snapshot_path):
        snapshot = json.loads(snapshot_path.read_text())
        assert snapshot["counters"]["stream.messages_scored"] > 0
        assert snapshot["gauges"]["match.memo_hit_rate"] >= 0.5
        assert snapshot["counters"]["stream.n_reordered"] == 0

    def test_prometheus_format_round_trips(self, tmp_path, capsys):
        from repro.telemetry import from_prometheus

        out = tmp_path / "snapshot.prom"
        assert main([
            "telemetry", "--format", "prometheus",
            "--out", str(out),
        ]) == 0
        text = out.read_text()
        assert "# TYPE repro_stream_ticks counter" in text
        rebuilt = from_prometheus(text)
        assert rebuilt.to_prometheus() == text


class TestServe:
    """The durable-service subcommand, including the crash drill the
    CI ``service-e2e`` job runs: kill a run mid-tick, replay, and
    expect the score CSVs to unify with an uninterrupted run's."""

    SERVE_ARGS = [
        "--threshold", "4.0", "--tick-size", "64",
        "--checkpoint-every", "5",
    ]

    def serve(self, workflow, data_dir, *extra):
        return main([
            "serve", "--data-dir", str(data_dir),
            "--trace", str(workflow["trace"]),
            "--model", str(workflow["model"]),
            *self.SERVE_ARGS, *extra,
        ])

    @staticmethod
    def rows(path):
        return set(path.read_text().splitlines())

    def test_bootstrap_requires_model(self, tmp_path):
        assert main([
            "serve", "--data-dir", str(tmp_path / "svc"),
        ]) == 2

    def test_crash_replay_matches_uninterrupted(
        self, workflow, tmp_path, capsys
    ):
        a_csv = tmp_path / "a.csv"
        b_csv = tmp_path / "b.csv"
        assert self.serve(
            workflow, tmp_path / "a", "--scores-out", str(a_csv)
        ) == 0
        assert self.serve(
            workflow, tmp_path / "b", "--scores-out", str(b_csv),
            "--kill-after-ticks", "12",
        ) == 3
        assert "simulated crash" in capsys.readouterr().err
        assert self.serve(
            workflow, tmp_path / "b", "--scores-out", str(b_csv),
            "--replay",
        ) == 0
        assert self.rows(a_csv) == self.rows(b_csv)
        assert len(self.rows(a_csv)) > 100

    def test_blind_restart_refused(self, workflow, tmp_path, capsys):
        data = tmp_path / "svc"
        assert self.serve(workflow, data, "--max-ticks", "3") == 0
        assert self.serve(workflow, data) == 2
        assert "--replay" in capsys.readouterr().err

    def test_resume_continues_feed(self, workflow, tmp_path):
        data = tmp_path / "svc"
        out = tmp_path / "scores.csv"
        full = tmp_path / "full.csv"
        assert self.serve(
            workflow, data, "--max-ticks", "4",
            "--scores-out", str(out),
        ) == 0
        assert self.serve(
            workflow, data, "--replay", "--max-ticks", "4",
            "--scores-out", str(out),
        ) == 0
        assert self.serve(
            workflow, tmp_path / "ref", "--max-ticks", "8",
            "--scores-out", str(full),
        ) == 0
        assert self.rows(full) <= self.rows(out)

    def test_rollback_requires_history(self, workflow, tmp_path, capsys):
        data = tmp_path / "svc"
        assert self.serve(workflow, data, "--max-ticks", "1") == 0
        assert main([
            "serve", "--data-dir", str(data), "--rollback",
        ]) == 2
        assert "no retained" in capsys.readouterr().err

    def test_telemetry_out_written(self, workflow, tmp_path):
        out = tmp_path / "telemetry.json"
        assert self.serve(
            workflow, tmp_path / "svc", "--max-ticks", "4",
            "--telemetry-out", str(out),
        ) == 0
        snapshot = json.loads(out.read_text())
        counters = snapshot["counters"]
        assert counters["runtime.ticks"] == 4
        assert counters["runtime.wal.appends"] >= 4
        assert counters["runtime.checkpoint.writes"] >= 1


class TestParser:
    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand_exits_with_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "subcommand",
        [
            "simulate", "mine", "train", "detect", "report",
            "telemetry", "serve",
        ],
    )
    def test_subcommand_help_exits_zero(self, subcommand, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([subcommand, "--help"])
        assert excinfo.value.code == 0
        assert "usage:" in capsys.readouterr().out


class TestFleetServe:
    """``serve --shards N``: the fleet runtime from the CLI, including
    the kill-one-shard drill CI's ``fleet-e2e`` job scripts: crash a
    shard mid-drain (exit 3), restart with ``--replay``, and expect
    the unioned per-shard CSVs to match an uninterrupted fleet's."""

    SERVE_ARGS = [
        "--threshold", "4.0", "--tick-size", "64",
        "--checkpoint-every", "5", "--shards", "3",
    ]

    def serve(self, workflow, data_dir, *extra):
        return main([
            "serve", "--data-dir", str(data_dir),
            "--trace", str(workflow["trace"]),
            "--model", str(workflow["model"]),
            *self.SERVE_ARGS, *extra,
        ])

    @staticmethod
    def rows(base):
        merged = set()
        for path in sorted(base.parent.glob(base.name + ".shard*")):
            merged.update(path.read_text().splitlines())
        return merged

    @staticmethod
    def busiest_shard():
        from repro.runtime.ring import HashRing

        ring = HashRing(shards=(0, 1, 2))
        loads = {shard: 0 for shard in ring.shards}
        for host in ("vpe00", "vpe01", "vpe02"):
            loads[ring.assign(host)] += 1
        return max(loads, key=loads.get)

    def test_fleet_run_scores_whole_feed(
        self, workflow, tmp_path, capsys
    ):
        out = tmp_path / "scores.csv"
        assert self.serve(
            workflow, tmp_path / "fleet", "--scores-out", str(out)
        ) == 0
        text = capsys.readouterr().out
        assert "across 3 shards" in text
        assert "fleet state in" in text
        merged = self.rows(out)
        assert len(merged) > 100
        shards_seen = {row.split(",")[0] for row in merged}
        assert len(shards_seen) >= 2, "feed must spread over shards"

    def test_kill_drill_replay_reaches_parity(
        self, workflow, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.csv"
        drilled = tmp_path / "drilled.csv"
        assert self.serve(
            workflow, tmp_path / "a", "--scores-out", str(baseline)
        ) == 0
        victim = self.busiest_shard()
        assert self.serve(
            workflow, tmp_path / "b", "--scores-out", str(drilled),
            "--kill-shard", str(victim),
            "--after-ticks", "2",
        ) == 3
        assert "shards died mid-drain" in capsys.readouterr().err
        assert self.serve(
            workflow, tmp_path / "b", "--scores-out", str(drilled),
            "--replay",
        ) == 0
        assert "replayed" in capsys.readouterr().out
        assert self.rows(baseline) == self.rows(drilled)

    def test_blind_fleet_restart_refused(
        self, workflow, tmp_path, capsys
    ):
        data = tmp_path / "fleet"
        assert self.serve(workflow, data, "--max-ticks", "3") == 0
        assert self.serve(workflow, data) == 2
        assert "--replay" in capsys.readouterr().err

    def test_shard_count_must_match_journal(
        self, workflow, tmp_path, capsys
    ):
        data = tmp_path / "fleet"
        assert self.serve(workflow, data, "--max-ticks", "3") == 0
        assert main([
            "serve", "--data-dir", str(data),
            "--trace", str(workflow["trace"]),
            "--threshold", "4.0", "--shards", "4", "--replay",
        ]) == 2
        assert "records 3 shards" in capsys.readouterr().err

    def test_kill_knobs_must_pair(self, workflow, tmp_path, capsys):
        assert self.serve(
            workflow, tmp_path / "fleet", "--kill-shard", "1"
        ) == 2
        assert "go together" in capsys.readouterr().err

    def test_single_shard_drill_flag_refused(
        self, workflow, tmp_path, capsys
    ):
        assert self.serve(
            workflow, tmp_path / "fleet", "--kill-after-ticks", "2"
        ) == 2
        assert "--kill-shard" in capsys.readouterr().err

    def test_rollback_refused_in_fleet_mode(
        self, workflow, tmp_path, capsys
    ):
        assert self.serve(
            workflow, tmp_path / "fleet", "--rollback"
        ) == 2
        assert "shard-NN" in capsys.readouterr().err

    def test_fleet_telemetry_out(self, workflow, tmp_path):
        out = tmp_path / "telemetry.json"
        assert self.serve(
            workflow, tmp_path / "fleet",
            "--telemetry-out", str(out),
        ) == 0
        snapshot = json.loads(out.read_text())
        counters = snapshot["counters"]
        assert counters["fleet.messages_routed"] > 0
        # worker registries merged in: runtime totals span the fleet
        assert counters["runtime.ticks"] == counters[
            "fleet.ticks_routed"
        ]
        assert snapshot["gauges"]["fleet.shards"] == 3


class TestTelemetryMerge:
    def snapshot_file(self, tmp_path, name, ticks):
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("runtime.ticks").inc(ticks)
        registry.gauge("runtime.backlog").set(float(ticks))
        path = tmp_path / name
        path.write_text(json.dumps(registry.snapshot()))
        return path

    def test_merge_sums_counters(self, tmp_path, capsys):
        a = self.snapshot_file(tmp_path, "a.json", 3)
        b = self.snapshot_file(tmp_path, "b.json", 4)
        assert main([
            "telemetry", "--merge", str(a), str(b),
        ]) == 0
        merged = json.loads(capsys.readouterr().out)
        assert merged["counters"]["runtime.ticks"] == 7
        assert merged["gauges"]["runtime.backlog"] == 4.0

    def test_merge_writes_out_file(self, tmp_path):
        a = self.snapshot_file(tmp_path, "a.json", 2)
        out = tmp_path / "merged.json"
        assert main([
            "telemetry", "--merge", str(a), "--out", str(out),
        ]) == 0
        assert json.loads(out.read_text())["counters"][
            "runtime.ticks"
        ] == 2

    def test_merge_rejects_check(self, tmp_path, capsys):
        a = self.snapshot_file(tmp_path, "a.json", 1)
        assert main([
            "telemetry", "--merge", str(a), "--check",
        ]) == 2
        assert "does not apply" in capsys.readouterr().err

    def test_merge_missing_file_errors(self, tmp_path, capsys):
        assert main([
            "telemetry", "--merge", str(tmp_path / "nope.json"),
        ]) == 2
        assert "cannot merge" in capsys.readouterr().err


class TestServeRca:
    """``serve --rca``: streaming root-cause analysis on a labeled
    correlated-outage trace, including the crash drill the CI
    ``rca-e2e`` job runs — kill mid-incident, replay, and expect the
    incident CSVs to unify (``sort -u``) with an uninterrupted run."""

    SERVE_ARGS = [
        "--threshold", "4.0", "--tick-size", "64",
        "--checkpoint-every", "5",
    ]

    @pytest.fixture(scope="class")
    def rca_workflow(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("rca-cli")
        trace = root / "trace"
        templates = root / "templates.json"
        model = root / "model"
        assert main([
            "simulate", "--out", str(trace), "--vpes", "6",
            "--months", "1", "--rate", "6", "--seed", "4",
            "--topology", "--scenario", "correlated-outage",
            "--outages", "3",
        ]) == 0
        assert main([
            "mine", "--trace", str(trace), "--out", str(templates),
            "--max-messages", "8000",
        ]) == 0
        assert main([
            "train", "--trace", str(trace), "--templates",
            str(templates), "--out", str(model),
            "--epochs", "1", "--hidden", "12", "--window", "6",
            "--max-samples", "2000",
        ]) == 0
        return {"trace": trace, "model": model}

    def serve(self, rca_workflow, data_dir, incidents, *extra):
        trace = rca_workflow["trace"]
        return main([
            "serve", "--data-dir", str(data_dir),
            "--trace", str(trace),
            "--model", str(rca_workflow["model"]),
            "--rca", "--topology", str(trace / "topology.json"),
            "--incidents-out", str(incidents),
            *self.SERVE_ARGS, *extra,
        ])

    @staticmethod
    def rows(path):
        return set(path.read_text().splitlines())

    def test_trace_carries_topology_and_labels(self, rca_workflow):
        trace = rca_workflow["trace"]
        assert (trace / "topology.json").exists()
        labels = (trace / "incidents.csv").read_text().splitlines()
        assert len(labels) == 1 + 3  # header + outages

    def test_crash_replay_incident_parity(
        self, rca_workflow, tmp_path, capsys
    ):
        """The acceptance drill: a killed-and-replayed run's incident
        CSV must sort -u to exactly the uninterrupted run's."""
        a_csv = tmp_path / "a.csv"
        b_csv = tmp_path / "b.csv"
        assert self.serve(rca_workflow, tmp_path / "a", a_csv) == 0
        assert "rca:" in capsys.readouterr().out
        assert self.serve(
            rca_workflow, tmp_path / "b", b_csv,
            "--kill-after-ticks", "12",
        ) == 3
        assert self.serve(
            rca_workflow, tmp_path / "b", b_csv, "--replay",
        ) == 0
        assert self.rows(a_csv) == self.rows(b_csv)
        assert len(self.rows(a_csv)) >= 3

    def test_incident_rows_are_well_formed(
        self, rca_workflow, tmp_path
    ):
        from repro.rca import INCIDENT_CSV_COLUMNS
        from repro.topology import FleetTopology

        incidents = tmp_path / "incidents.csv"
        assert self.serve(
            rca_workflow, tmp_path / "svc", incidents
        ) == 0
        topology = FleetTopology.load(
            rca_workflow["trace"] / "topology.json"
        )
        rows = sorted(self.rows(incidents))
        assert rows
        for row in rows:
            fields = row.split(",")
            assert len(fields) == len(INCIDENT_CSV_COLUMNS)
            devices = fields[4].split(";")
            for device in devices:
                assert device in topology
            assert fields[7] in {
                "circuit", "site", "cable", "software", "device",
            }
            assert 0.0 < float(fields[9]) <= 1.0

    def test_fleet_rca_writes_shard_incident_files(
        self, rca_workflow, tmp_path
    ):
        incidents = tmp_path / "incidents.csv"
        assert self.serve(
            rca_workflow, tmp_path / "fleet", incidents,
            "--shards", "2",
        ) == 0
        shard_files = sorted(
            incidents.parent.glob(incidents.name + ".shard*")
        )
        assert len(shard_files) == 2
        merged = set()
        for path in shard_files:
            for row in path.read_text().splitlines():
                shard, _, rest = row.partition(",")
                assert shard in {"0", "1"}
                merged.add(rest)
        assert merged
