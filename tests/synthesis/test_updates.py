"""Tests for repro.synthesis.updates."""

import pytest

from repro.synthesis.catalog import UPDATE_TEMPLATES
from repro.synthesis.profiles import build_fleet_profiles
from repro.synthesis.updates import SoftwareUpdate
from repro.timeutil import MONTH, TRACE_START


def update(new_share=0.5, vpes=("vpe00",)):
    return SoftwareUpdate(
        time=TRACE_START + 3 * MONTH,
        affected_vpes=frozenset(vpes),
        new_share=new_share,
    )


class TestAppliesTo:
    def test_affected_after_rollout(self):
        u = update()
        assert u.applies_to("vpe00", u.time)
        assert u.applies_to("vpe00", u.time + 1)

    def test_not_before_rollout(self):
        u = update()
        assert not u.applies_to("vpe00", u.time - 1)

    def test_unaffected_vpe(self):
        u = update()
        assert not u.applies_to("vpe99", u.time + 1)


class TestRewriteWeights:
    def test_normalized(self):
        profile = build_fleet_profiles(n_vpes=1)[0]
        rewritten = update().rewrite_weights(profile.template_weights)
        assert sum(rewritten.values()) == pytest.approx(1.0)

    def test_new_templates_take_requested_share(self):
        profile = build_fleet_profiles(n_vpes=1)[0]
        rewritten = update(new_share=0.5).rewrite_weights(
            profile.template_weights
        )
        new_names = {spec.name for spec in UPDATE_TEMPLATES}
        new_mass = sum(
            w for name, w in rewritten.items() if name in new_names
        )
        assert new_mass == pytest.approx(0.5)

    def test_replaced_templates_suppressed(self):
        profile = build_fleet_profiles(n_vpes=1)[0]
        before = profile.template_weights["bgp_keepalive"]
        rewritten = update().rewrite_weights(profile.template_weights)
        assert rewritten["bgp_keepalive"] < 0.1 * before

    def test_distribution_shift_is_large(self):
        """The rewrite must push cosine similarity below the paper's
        0.4 threshold so the drift trigger fires."""
        import numpy as np
        from repro.ml.similarity import cosine_similarity

        profile = build_fleet_profiles(n_vpes=1)[0]
        old = profile.template_weights
        new = update().rewrite_weights(old)
        names = sorted(set(old) | set(new))
        a = np.array([old.get(n, 0.0) for n in names])
        b = np.array([new.get(n, 0.0) for n in names])
        assert cosine_similarity(a, b) < 0.4

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            update(new_share=0.0)
        with pytest.raises(ValueError):
            update(new_share=1.0)
