"""Tests for repro.synthesis.catalog."""

import numpy as np
import pytest

from repro.logs.signature_tree import SignatureTree
from repro.synthesis.catalog import (
    FAULT_SYMPTOM_TEMPLATES,
    PHYSICAL_TEMPLATES,
    ROUTINE_TEMPLATES,
    UPDATE_TEMPLATES,
    catalog_by_name,
)
from repro.tickets.ticket import RootCause
from repro.timeutil import TRACE_START


class TestCatalogIntegrity:
    def test_names_unique(self):
        index = catalog_by_name()
        assert len(index) >= 40

    def test_every_root_cause_has_symptoms(self):
        for cause in RootCause:
            if cause is RootCause.DUPLICATE:
                continue
            assert FAULT_SYMPTOM_TEMPLATES[cause.value]

    def test_paper_signatures_present(self):
        """The two operational findings quoted in section 5.3."""
        index = catalog_by_name()
        assert "invalid response from peer chassis-control" in (
            index["chassis_peer_invalid"].pattern
        )
        assert "bgp reject path" in (
            index["bgp_unusable_aspath"].pattern
        )

    def test_routine_weights_positive(self):
        assert all(spec.weight > 0 for spec in ROUTINE_TEMPLATES)


class TestRendering:
    def test_render_fills_all_placeholders(self):
        rng = np.random.default_rng(0)
        for spec in catalog_by_name().values():
            message = spec.render(TRACE_START, "vpe00", rng)
            assert "{" not in message.text
            assert "}" not in message.text
            assert message.process == spec.process
            assert message.severity == spec.severity

    def test_render_varies_fields(self):
        rng = np.random.default_rng(0)
        spec = catalog_by_name()["bgp_keepalive"]
        texts = {
            spec.render(TRACE_START, "vpe00", rng).text
            for _ in range(10)
        }
        assert len(texts) > 1

    def test_rendered_variants_mine_to_one_signature(self):
        """Each catalog template must be stable under the signature
        tree: its variants collapse to few signatures."""
        rng = np.random.default_rng(0)
        for spec in ROUTINE_TEMPLATES:
            tree = SignatureTree()
            for _ in range(30):
                tree.insert(spec.render(TRACE_START, "vpe00", rng))
            assert tree.n_signatures <= 2, spec.name

    def test_deterministic_given_seed(self):
        spec = catalog_by_name()["ospf_spf"]
        a = spec.render(TRACE_START, "x", np.random.default_rng(5)).text
        b = spec.render(TRACE_START, "x", np.random.default_rng(5)).text
        assert a == b


class TestGroupSeparation:
    def test_update_templates_disjoint_from_routine(self):
        routine = {spec.name for spec in ROUTINE_TEMPLATES}
        update = {spec.name for spec in UPDATE_TEMPLATES}
        assert not routine & update

    def test_physical_templates_disjoint_from_routine(self):
        routine = {spec.name for spec in ROUTINE_TEMPLATES}
        physical = {spec.name for spec in PHYSICAL_TEMPLATES}
        assert not routine & physical
