"""Tests for repro.synthesis.profiles."""

import numpy as np
import pytest

from repro.synthesis.profiles import (
    ROLES,
    VpeProfile,
    build_fleet_profiles,
    build_ppe_profile,
)


class TestBuildFleetProfiles:
    def test_count_and_names(self):
        profiles = build_fleet_profiles(n_vpes=10)
        assert len(profiles) == 10
        assert [p.name for p in profiles] == [
            f"vpe{i:02d}" for i in range(10)
        ]

    def test_all_roles_present_in_large_fleet(self):
        profiles = build_fleet_profiles(n_vpes=38)
        assert {p.role for p in profiles} == set(ROLES)

    def test_weights_normalized(self):
        for profile in build_fleet_profiles(n_vpes=8):
            total = sum(profile.template_weights.values())
            assert total == pytest.approx(1.0)

    def test_deterministic(self):
        a = build_fleet_profiles(n_vpes=6, seed=3)
        b = build_fleet_profiles(n_vpes=6, seed=3)
        assert [p.template_weights for p in a] == [
            p.template_weights for p in b
        ]

    def test_lemons_have_elevated_fault_rates(self):
        profiles = build_fleet_profiles(n_vpes=38, lemon_fraction=0.15)
        scales = sorted(p.fault_rate_scale for p in profiles)
        # ~15% of 38 ≈ 5-6 lemons with scale >= 3
        assert sum(1 for s in scales if s >= 3.0) >= 4
        assert scales[0] < 2.0

    def test_same_role_profiles_similar_not_identical(self):
        profiles = build_fleet_profiles(n_vpes=38, seed=0)
        same_role = [
            p for p in profiles if p.role == profiles[0].role
        ]
        assert len(same_role) >= 2
        first, second = same_role[0], same_role[1]
        assert first.template_weights != second.template_weights

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            build_fleet_profiles(n_vpes=0)


class TestVpeProfile:
    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            VpeProfile(
                name="x", role=ROLES[0], base_rate_per_hour=0.0,
                template_weights={"a": 1.0},
            )

    def test_invalid_role(self):
        with pytest.raises(ValueError):
            VpeProfile(
                name="x", role="database", base_rate_per_hour=1.0,
                template_weights={"a": 1.0},
            )

    def test_templates_exclude_physical_for_vpe(self):
        profile = build_fleet_profiles(n_vpes=1)[0]
        names = {spec.name for spec in profile.templates}
        assert "optics_power" not in names


class TestPpeProfile:
    def test_rate_reflects_volume_ratio(self):
        ppe = build_ppe_profile(vpe_rate_per_hour=40.0)
        # vPE volume is 77% lower => pPE rate ≈ 40 / 0.23
        assert ppe.base_rate_per_hour == pytest.approx(40.0 / 0.23)

    def test_ppe_emits_physical_layer(self):
        ppe = build_ppe_profile()
        names = {spec.name for spec in ppe.templates}
        assert "optics_power" in names
        assert ppe.is_physical
        physical_weight = sum(
            w for name, w in ppe.template_weights.items()
            if name in names and name in (
                "optics_power", "fpc_status", "pic_poll",
                "sonet_alarm", "power_supply", "backplane_crc",
            )
        )
        assert physical_weight > 0.1
