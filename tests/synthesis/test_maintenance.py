"""Tests for repro.synthesis.maintenance."""

import numpy as np
import pytest

from repro.synthesis.maintenance import (
    MaintenanceScheduler,
    MaintenanceWindow,
)
from repro.synthesis.profiles import build_fleet_profiles
from repro.tickets.ticket import RootCause
from repro.timeutil import DAY, HOUR, MONTH, TRACE_START


@pytest.fixture()
def profile():
    return build_fleet_profiles(n_vpes=1)[0]


class TestSchedule:
    def test_cadence(self, profile):
        scheduler = MaintenanceScheduler(interval_days=21.0)
        rng = np.random.default_rng(0)
        windows = scheduler.schedule(
            profile, TRACE_START, TRACE_START + 12 * MONTH, rng
        )
        # ~ 360/21 ≈ 17 windows; allow wide slack for jitter
        assert 8 <= len(windows) <= 30

    def test_windows_inside_trace(self, profile):
        scheduler = MaintenanceScheduler()
        rng = np.random.default_rng(1)
        end = TRACE_START + 6 * MONTH
        for window in scheduler.schedule(
            profile, TRACE_START, end, rng
        ):
            assert window.start >= TRACE_START
            assert window.start < end

    def test_windows_at_night(self, profile):
        scheduler = MaintenanceScheduler(night_hour=2.0)
        rng = np.random.default_rng(2)
        for window in scheduler.schedule(
            profile, TRACE_START, TRACE_START + 12 * MONTH, rng
        ):
            hour_of_day = (window.start % DAY) / HOUR
            assert 1.0 <= hour_of_day <= 3.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MaintenanceScheduler(interval_days=0)
        with pytest.raises(ValueError):
            MaintenanceWindow(vpe="x", start=10.0, end=10.0)


class TestMaterialize:
    def test_storm_and_signals(self, profile):
        scheduler = MaintenanceScheduler()
        rng = np.random.default_rng(0)
        window = MaintenanceWindow(
            vpe="vpe00",
            start=TRACE_START,
            end=TRACE_START + 2 * HOUR,
        )
        messages, signals = scheduler.materialize(
            window, rng, reoccurrence_count=2
        )
        assert messages
        assert all(
            window.start <= m.timestamp < window.end for m in messages
        )
        assert len(signals) == 2
        assert all(
            s.root_cause is RootCause.MAINTENANCE for s in signals
        )
        assert all(s.clears_at == window.end for s in signals)

    def test_distinct_windows_distinct_fault_ids(self, profile):
        scheduler = MaintenanceScheduler()
        rng = np.random.default_rng(0)
        ids = set()
        for offset in (0.0, DAY):
            window = MaintenanceWindow(
                vpe="vpe00",
                start=TRACE_START + offset,
                end=TRACE_START + offset + HOUR,
            )
            _, signals = scheduler.materialize(window, rng)
            ids.add(signals[0].fault_id)
        assert len(ids) == 2
