"""Tests for correlated fault propagation and its scenario preset.

Covers the planner's label/slot/attenuation contracts and the
end-to-end determinism satellite: topology generation and fault-site
selection draw from one ``--seed``-derived stream, so a fresh
interpreter replans the identical outages.
"""

import subprocess
import sys

import numpy as np
import pytest

from repro.synthesis.correlated import (
    OUTAGE_KINDS,
    OUTAGE_SEED_TAG,
    plan_correlated_outages,
    read_incidents,
    write_incidents,
)
from repro.synthesis.outage import correlated_outage_config
from repro.topology import TopologyConfig, generate_topology

START = 0.0
END = 15.0 * 86400.0


@pytest.fixture(scope="module")
def topology():
    return generate_topology(
        [f"vpe{i:02d}" for i in range(16)],
        TopologyConfig(
            devices_per_circuit=2,
            circuits_per_site=2,
            sites_per_cable=2,
            seed=7,
        ),
    )


def plan(topology, n_outages=10, seed=7, **kwargs):
    rng = np.random.default_rng([seed, OUTAGE_SEED_TAG])
    return plan_correlated_outages(
        topology, START, END, n_outages, rng, **kwargs
    )


class TestPlanner:
    def test_kinds_cycle_the_taxonomy(self, topology):
        _, incidents = plan(topology, n_outages=10)
        kinds = [incident.cause_kind for incident in incidents]
        assert kinds == list(OUTAGE_KINDS) * 2

    def test_labels_are_consistent(self, topology):
        events, incidents = plan(topology)
        for incident in incidents:
            assert topology.kind(incident.cause_element) == (
                incident.cause_kind
            )
            covered = topology.covered(incident.cause_element)
            assert incident.devices
            assert set(incident.devices) <= covered
            assert START <= incident.onset < incident.clears_at <= END
        planned_devices = {
            device
            for incident in incidents
            for device in incident.devices
        }
        assert set(events) == planned_devices

    def test_slots_are_disjoint(self, topology):
        _, incidents = plan(topology, n_outages=10)
        slot = (END - START) / 10
        for index, incident in enumerate(incidents):
            assert START + index * slot <= incident.onset
            assert incident.onset < START + (index + 1) * slot

    def test_events_fall_inside_their_outage(self, topology):
        events, incidents = plan(topology)
        for incident in incidents:
            for device in incident.devices:
                # Propagation delays the device onset but never moves
                # it outside the element outage's own span.
                assert any(
                    event.clears_at == incident.clears_at
                    and incident.onset <= event.onset < event.clears_at
                    for event in events[device]
                )

    def test_hard_attenuation_anchors_one_device(self, topology):
        """Near-zero attenuation silences every upstream outage; the
        planner must still anchor each label on one covered device."""
        _, incidents = plan(topology, n_outages=5, attenuation=1e-9)
        for incident in incidents:
            assert len(incident.devices) >= 1
            if incident.cause_kind != "device":
                assert len(incident.devices) == 1

    def test_forced_symptom_emission(self, topology):
        """Planned outages are hard failures: every propagated event
        carries emission probability 1 regardless of the base model."""
        events, _ = plan(topology)
        for device_events in events.values():
            for event in device_events:
                assert event.model.symptom_emission_probability == 1.0
                assert event.model.pre_symptom_probability == 1.0

    def test_same_rng_replans_identically(self, topology):
        _, first = plan(topology)
        _, second = plan(topology)
        assert first == second

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            (dict(n_outages=0), "n_outages"),
            (dict(attenuation=0.0), "attenuation"),
            (dict(attenuation=1.5), "attenuation"),
        ],
    )
    def test_bad_arguments_rejected(self, topology, kwargs, match):
        with pytest.raises(ValueError, match=match):
            plan(topology, **{"n_outages": 5, **kwargs})

    def test_end_before_start_rejected(self, topology):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="after start"):
            plan_correlated_outages(topology, 10.0, 10.0, 1, rng)


class TestIncidentCsv:
    def test_round_trip(self, topology, tmp_path):
        _, incidents = plan(topology, n_outages=5)
        path = tmp_path / "incidents.csv"
        write_incidents(incidents, path)
        loaded = read_incidents(path)
        assert len(loaded) == len(incidents)
        for got, want in zip(loaded, incidents):
            assert got.incident_id == want.incident_id
            assert got.cause_kind == want.cause_kind
            assert got.cause_element == want.cause_element
            assert got.devices == want.devices
            assert got.onset == pytest.approx(want.onset, abs=1e-3)
            assert got.clears_at == pytest.approx(
                want.clears_at, abs=1e-3
            )


class TestScenarioPreset:
    def test_preset_isolates_attribution(self):
        config = correlated_outage_config(seed=3, n_outages=7)
        assert config.n_vpes == 16
        assert config.topology is not None
        assert config.n_correlated_outages == 7
        # Confounders off: no mid-trace update, no fleet-wide events.
        assert config.update_month is None
        assert config.n_fleet_events == 0
        assert config.cascade_probability == 0.0
        assert 0 < config.fault_rate_multiplier < 1


_DETERMINISM_SCRIPT = """
import numpy as np
from repro.synthesis.correlated import (
    OUTAGE_SEED_TAG, plan_correlated_outages,
)
from repro.topology import TopologyConfig, generate_topology

devices = [f"vpe{i:02d}" for i in range(16)]
topology = generate_topology(devices, TopologyConfig(seed=29))
rng = np.random.default_rng([29, OUTAGE_SEED_TAG])
_, incidents = plan_correlated_outages(
    topology, 0.0, 30 * 86400.0, 10, rng
)
for incident in incidents:
    print(
        incident.incident_id, incident.cause_kind,
        incident.cause_element, repr(incident.onset),
        repr(incident.clears_at), ";".join(incident.devices),
    )
"""


def test_outage_plan_stable_across_fresh_interpreters():
    """Topology generation and fault-site selection both derive from
    the master seed: two cold interpreters plan identical outages."""
    outputs = [
        subprocess.run(
            [sys.executable, "-c", _DETERMINISM_SCRIPT],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        for _ in range(2)
    ]
    assert outputs[0] == outputs[1]
    assert len(outputs[0].splitlines()) == 10
