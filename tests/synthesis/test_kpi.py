"""Tests for repro.synthesis.kpi."""

import numpy as np
import pytest

from repro.synthesis.faults import DEFAULT_FAULT_MODELS, FaultEvent
from repro.synthesis.kpi import (
    KpiSeriesConfig,
    KpiSimulator,
    KpiThresholdDetector,
)
from repro.tickets.ticket import RootCause
from repro.timeutil import DAY, HOUR, MINUTE, TRACE_START


def make_fault(onset, duration=4 * HOUR):
    model = next(
        m for m in DEFAULT_FAULT_MODELS
        if m.root_cause is RootCause.CIRCUIT
    )
    return FaultEvent(
        fault_id=123456,
        vpe="vpe00",
        model=model,
        onset=onset,
        clears_at=onset + duration,
    )


@pytest.fixture()
def simulator():
    return KpiSimulator()


class TestGenerate:
    def test_cadence_and_bounds(self, simulator, rng):
        samples = simulator.generate(
            TRACE_START, TRACE_START + DAY, [], rng
        )
        assert len(samples) == int(DAY // (5 * MINUTE))
        gaps = np.diff([s.timestamp for s in samples])
        assert np.allclose(gaps, 5 * MINUTE)
        for sample in samples:
            assert 0 <= sample.cpu_utilization <= 100
            assert 0 <= sample.packet_loss <= 1
            assert sample.session_count >= 0

    def test_empty_interval(self, simulator, rng):
        assert simulator.generate(
            TRACE_START, TRACE_START, [], rng
        ) == []

    def test_fault_degrades_kpis(self, simulator, rng):
        fault = make_fault(TRACE_START + 12 * HOUR)
        samples = simulator.generate(
            TRACE_START, TRACE_START + DAY, [fault], rng
        )
        during = [
            s for s in samples
            if fault.onset + HOUR <= s.timestamp <= fault.clears_at
        ]
        before = [
            s for s in samples if s.timestamp < fault.onset
        ]
        assert np.mean([s.packet_loss for s in during]) > 10 * np.mean(
            [s.packet_loss for s in before]
        )
        assert np.mean([s.cpu_utilization for s in during]) > np.mean(
            [s.cpu_utilization for s in before]
        ) + 10

    def test_impact_ramps_up(self, simulator):
        fault = make_fault(TRACE_START)
        early = simulator._impact(TRACE_START + 5 * MINUTE, fault)
        late = simulator._impact(TRACE_START + HOUR, fault)
        assert 0 < early < 1
        assert late == 1.0

    def test_impact_zero_outside(self, simulator):
        fault = make_fault(TRACE_START + HOUR)
        assert simulator._impact(TRACE_START, fault) == 0.0
        assert simulator._impact(
            fault.clears_at + 1.0, fault
        ) == 0.0


class TestKpiThresholdDetector:
    def test_quiet_on_normal_series(self, simulator, rng):
        normal = simulator.generate(
            TRACE_START, TRACE_START + 7 * DAY, [], rng
        )
        detector = KpiThresholdDetector(z_threshold=6.0).fit(normal)
        fresh = simulator.generate(
            TRACE_START + 7 * DAY,
            TRACE_START + 9 * DAY,
            [],
            np.random.default_rng(1),
        )
        alarms = detector.detect(fresh)
        assert alarms.size / len(fresh) < 0.02

    def test_detects_fault_after_lag(self, simulator, rng):
        normal = simulator.generate(
            TRACE_START, TRACE_START + 7 * DAY, [], rng
        )
        detector = KpiThresholdDetector(z_threshold=6.0).fit(normal)
        fault = make_fault(TRACE_START + 8 * DAY)
        series = simulator.generate(
            TRACE_START + 7 * DAY,
            TRACE_START + 9 * DAY,
            [fault],
            np.random.default_rng(2),
        )
        alarms = detector.detect(series)
        in_fault = alarms[
            (alarms >= fault.onset) & (alarms <= fault.clears_at)
        ]
        assert in_fault.size > 0
        # the first alarm lags the onset: service-level visibility
        # waits for the impact to build up
        assert in_fault[0] >= fault.onset + 10 * MINUTE

    def test_score_before_fit(self):
        with pytest.raises(RuntimeError):
            KpiThresholdDetector().score([])

    def test_too_little_training_data(self, simulator, rng):
        samples = simulator.generate(
            TRACE_START, TRACE_START + 30 * MINUTE, [], rng
        )
        with pytest.raises(ValueError):
            KpiThresholdDetector().fit(samples[:5])

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            KpiThresholdDetector(z_threshold=0.0)
