"""Tests for repro.synthesis.fleet and repro.synthesis.dataset."""

import numpy as np
import pytest

from repro.synthesis import FleetSimulator, SimulationConfig
from repro.tickets.ticket import RootCause
from repro.timeutil import DAY, HOUR, MONTH, TRACE_START


class TestSimulationConfig:
    def test_defaults_are_paper_scale(self):
        config = SimulationConfig()
        assert config.n_vpes == 38
        assert config.n_months == 18

    def test_update_time(self):
        config = SimulationConfig(n_months=6, update_month=4)
        assert config.update_time == TRACE_START + 4 * MONTH

    def test_update_disabled(self):
        config = SimulationConfig(update_month=None)
        assert config.update_time is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_vpes": 0},
            {"n_months": 0},
            {"update_fraction": 1.5},
            {"n_months": 4, "update_month": 4},
            {"n_months": 4, "update_month": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            SimulationConfig(**kwargs)


class TestFleetSimulator:
    def test_streams_per_vpe_sorted(self, small_dataset):
        for vpe, stream in small_dataset.messages.items():
            times = [m.timestamp for m in stream]
            assert times == sorted(times)
            assert all(m.host == vpe for m in stream)

    def test_every_vpe_has_messages(self, small_dataset):
        assert set(small_dataset.messages) == set(
            small_dataset.vpe_names
        )
        assert all(
            len(stream) > 100
            for stream in small_dataset.messages.values()
        )

    def test_tickets_sorted_and_in_range(self, small_dataset):
        reports = [t.report_time for t in small_dataset.tickets]
        assert reports == sorted(reports)
        assert all(r >= small_dataset.start for r in reports)

    def test_ticket_mix_has_maintenance_and_faults(self, small_dataset):
        causes = {t.root_cause for t in small_dataset.tickets}
        assert RootCause.MAINTENANCE in causes
        assert causes & {
            RootCause.CIRCUIT, RootCause.SOFTWARE,
            RootCause.CABLE, RootCause.HARDWARE,
        }

    def test_deterministic(self, small_config):
        a = FleetSimulator(small_config).run()
        b = FleetSimulator(small_config).run()
        assert a.n_messages == b.n_messages
        assert len(a.tickets) == len(b.tickets)
        assert [m.text for m in a.messages["vpe00"][:50]] == [
            m.text for m in b.messages["vpe00"][:50]
        ]

    def test_update_changes_distribution(self, small_dataset,
                                         small_config):
        update = small_dataset.updates[0]
        affected = sorted(update.affected_vpes)[0]
        before = {
            m.process
            for m in small_dataset.messages_between(
                affected, update.time - 5 * DAY, update.time
            )
        }
        after = {
            m.process
            for m in small_dataset.messages_between(
                affected, update.time, update.time + 5 * DAY
            )
        }
        assert "telemetryd" not in before
        assert "telemetryd" in after

    def test_unaffected_vpes_unchanged(self, small_dataset):
        update = small_dataset.updates[0]
        unaffected = [
            v for v in small_dataset.vpe_names
            if v not in update.affected_vpes
        ]
        assert unaffected
        processes = {
            m.process
            for m in small_dataset.messages_between(
                unaffected[0], update.time, small_dataset.end
            )
        }
        assert "telemetryd" not in processes


class TestFleetDataset:
    def test_messages_between_bounds(self, small_dataset):
        start = small_dataset.start + 5 * DAY
        end = start + DAY
        window = small_dataset.messages_between("vpe00", start, end)
        assert all(start <= m.timestamp < end for m in window)

    def test_messages_between_unknown_vpe(self, small_dataset):
        with pytest.raises(KeyError):
            small_dataset.messages_between("nope", 0, 1)

    def test_tickets_for_filters(self, small_dataset):
        vpe = small_dataset.tickets[0].vpe
        tickets = small_dataset.tickets_for(vpe=vpe)
        assert all(t.vpe == vpe for t in tickets)
        no_dup = small_dataset.tickets_for(include_duplicates=False)
        assert all(not t.is_duplicate for t in no_dup)

    def test_scrub_intervals_merged_and_sorted(self, small_dataset):
        for vpe in small_dataset.vpe_names:
            intervals = small_dataset.scrub_intervals(vpe)
            for (a_lo, a_hi), (b_lo, b_hi) in zip(
                intervals, intervals[1:]
            ):
                assert a_hi < b_lo

    def test_normal_messages_avoid_ticket_periods(self, small_dataset):
        vpe = small_dataset.tickets[0].vpe
        normal = small_dataset.normal_messages(vpe)
        tickets = small_dataset.tickets_for(vpe=vpe)
        for message in normal[:2000]:
            for ticket in tickets:
                assert not (
                    ticket.report_time - 3 * DAY
                    <= message.timestamp
                    <= ticket.repair_time
                )

    def test_normal_messages_subset_of_all(self, small_dataset):
        vpe = small_dataset.vpe_names[0]
        normal = len(small_dataset.normal_messages(vpe))
        total = len(small_dataset.messages[vpe])
        assert 0 < normal <= total

    def test_aggregate_merges_sorted(self, small_dataset):
        merged = small_dataset.aggregate_messages(
            start=small_dataset.start,
            end=small_dataset.start + 2 * DAY,
        )
        times = [m.timestamp for m in merged]
        assert times == sorted(times)
        assert {m.host for m in merged} == set(small_dataset.vpe_names)

    def test_profile_lookup(self, small_dataset):
        profile = small_dataset.profile("vpe00")
        assert profile.name == "vpe00"
        with pytest.raises(KeyError):
            small_dataset.profile("missing")
