"""Tests for repro.synthesis.faults."""

import numpy as np
import pytest

from repro.synthesis.faults import (
    DEFAULT_FAULT_MODELS,
    FaultEvent,
    FaultInjector,
    FaultTypeModel,
    fleet_wide_circuit_event,
)
from repro.synthesis.profiles import build_fleet_profiles
from repro.tickets.ticket import RootCause
from repro.timeutil import HOUR, MINUTE, MONTH, TRACE_START


@pytest.fixture()
def profile():
    return build_fleet_profiles(n_vpes=1)[0]


def circuit_model(**overrides):
    base = next(
        m for m in DEFAULT_FAULT_MODELS
        if m.root_cause is RootCause.CIRCUIT
    )
    if not overrides:
        return base
    from dataclasses import replace
    return replace(base, **overrides)


class TestFaultTypeModel:
    def test_defaults_cover_four_causes(self):
        causes = {m.root_cause for m in DEFAULT_FAULT_MODELS}
        assert causes == {
            RootCause.CIRCUIT, RootCause.SOFTWARE,
            RootCause.CABLE, RootCause.HARDWARE,
        }

    def test_figure8_visibility_ordering(self):
        """Circuit > software > cable > hardware in pre-report
        syslog visibility — the Figure 8 ordering."""
        by_cause = {m.root_cause: m for m in DEFAULT_FAULT_MODELS}
        visibility = {
            cause: model.symptom_emission_probability
            * model.pre_symptom_probability
            for cause, model in by_cause.items()
        }
        assert (
            visibility[RootCause.CIRCUIT]
            > visibility[RootCause.SOFTWARE]
            > visibility[RootCause.CABLE]
            > visibility[RootCause.HARDWARE]
        )

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            circuit_model(pre_symptom_probability=1.5)
        with pytest.raises(ValueError):
            circuit_model(symptom_emission_probability=-0.1)

    def test_symptom_templates_resolve(self):
        for model in DEFAULT_FAULT_MODELS:
            assert model.symptom_templates


class TestDrawFaults:
    def test_rate_scales_with_intensity(self, profile):
        injector = FaultInjector()
        rng = np.random.default_rng(0)
        events = injector.draw_faults(
            profile, TRACE_START, TRACE_START + 24 * MONTH, rng
        )
        expected = sum(
            m.rate_per_vpe_month for m in DEFAULT_FAULT_MODELS
        ) * 24 * profile.fault_rate_scale
        assert 0.4 * expected < len(events) < 2.0 * expected

    def test_sorted_by_onset(self, profile):
        rng = np.random.default_rng(1)
        events = FaultInjector().draw_faults(
            profile, TRACE_START, TRACE_START + 12 * MONTH, rng
        )
        onsets = [e.onset for e in events]
        assert onsets == sorted(onsets)

    def test_empty_interval(self, profile):
        rng = np.random.default_rng(0)
        assert FaultInjector().draw_faults(
            profile, TRACE_START, TRACE_START, rng
        ) == []

    def test_fault_ids_unique(self, profile):
        rng = np.random.default_rng(2)
        events = FaultInjector().draw_faults(
            profile, TRACE_START, TRACE_START + 24 * MONTH, rng
        )
        ids = [e.fault_id for e in events]
        assert len(ids) == len(set(ids))


def make_event(model, onset=TRACE_START, duration=2 * HOUR):
    return FaultEvent(
        fault_id=99999, vpe="vpe00", model=model, onset=onset,
        clears_at=onset + duration,
    )


class TestMaterialize:
    def test_signal_count_matches_reoccurrence(self):
        injector = FaultInjector()
        rng = np.random.default_rng(0)
        _, signals = injector.materialize(
            make_event(circuit_model()), rng, reoccurrence_count=3
        )
        assert len(signals) == 3
        assert all(s.fault_id == 99999 for s in signals)

    def test_signals_after_onset(self):
        injector = FaultInjector()
        rng = np.random.default_rng(0)
        event = make_event(circuit_model())
        _, signals = injector.materialize(event, rng)
        assert all(s.timestamp > event.onset for s in signals)

    def test_always_emitting_model_produces_burst(self):
        model = circuit_model(symptom_emission_probability=1.0,
                              pre_symptom_probability=1.0)
        injector = FaultInjector()
        rng = np.random.default_rng(0)
        event = make_event(model)
        messages, _ = injector.materialize(event, rng)
        assert messages
        assert messages[0].timestamp == pytest.approx(event.onset)
        assert all(m.host == "vpe00" for m in messages)

    def test_never_emitting_model_silent(self):
        model = circuit_model(symptom_emission_probability=0.0)
        injector = FaultInjector()
        rng = np.random.default_rng(0)
        messages, signals = injector.materialize(
            make_event(model), rng
        )
        assert messages == []
        assert signals  # monitors still fire -> ticket still opens

    def test_post_symptom_mode_starts_after_signal(self):
        model = circuit_model(
            symptom_emission_probability=1.0,
            pre_symptom_probability=0.0,
        )
        injector = FaultInjector()
        rng = np.random.default_rng(0)
        event = make_event(model, duration=6 * HOUR)
        messages, signals = injector.materialize(event, rng)
        assert messages[0].timestamp > signals[0].timestamp

    def test_symptoms_span_infected_period(self):
        model = circuit_model(
            symptom_emission_probability=1.0,
            pre_symptom_probability=1.0,
        )
        injector = FaultInjector()
        rng = np.random.default_rng(3)
        event = make_event(model, duration=5 * HOUR)
        messages, _ = injector.materialize(event, rng)
        assert messages[-1].timestamp > event.onset + 2 * HOUR
        assert all(m.timestamp <= event.clears_at for m in messages)

    def test_symptom_templates_match_cause(self):
        model = circuit_model(symptom_emission_probability=1.0)
        injector = FaultInjector()
        rng = np.random.default_rng(0)
        messages, _ = injector.materialize(make_event(model), rng)
        allowed = {
            spec.process for spec in model.symptom_templates
        }
        assert {m.process for m in messages} <= allowed


class TestFleetWideEvent:
    def test_hits_many_vpes_simultaneously(self):
        profiles = build_fleet_profiles(n_vpes=10)
        rng = np.random.default_rng(0)
        events = fleet_wide_circuit_event(
            profiles, TRACE_START + MONTH, rng, min_fraction=0.5
        )
        assert len(events) == 5
        assert len({e.vpe for e in events}) == 5
        onsets = [e.onset for e in events]
        assert max(onsets) - min(onsets) <= 5 * MINUTE
        assert all(
            e.root_cause is RootCause.CIRCUIT for e in events
        )
