"""Tests for repro.synthesis.markov."""

import numpy as np
import pytest

from repro.synthesis.catalog import catalog_by_name
from repro.synthesis.markov import (
    MarkovLogGenerator,
    build_structure,
    diurnal_rate_scale,
)
from repro.timeutil import DAY, HOUR, TRACE_START


def simple_weights():
    return {
        "bgp_keepalive": 0.5,
        "ospf_hello": 0.3,
        "ntp_sync": 0.2,
    }


def generator(coherence=0.7, rate=60.0, seed=0):
    structure = build_structure(
        simple_weights(), np.random.default_rng(seed)
    )
    return MarkovLogGenerator(
        catalog_by_name(), structure, rate_per_hour=rate,
        coherence=coherence,
    )


class TestBuildStructure:
    def test_stationary_normalized(self):
        structure = build_structure(
            simple_weights(), np.random.default_rng(0)
        )
        assert structure.stationary.sum() == pytest.approx(1.0)

    def test_successor_probs_normalized(self):
        structure = build_structure(
            simple_weights(), np.random.default_rng(0)
        )
        for probs in structure.successor_probs:
            assert sum(probs) == pytest.approx(1.0)

    def test_empty_weights_rejected(self):
        with pytest.raises(ValueError):
            build_structure({}, np.random.default_rng(0))


class TestDiurnalScale:
    def test_positive_everywhere(self):
        for hour in range(24):
            assert diurnal_rate_scale(TRACE_START + hour * HOUR) > 0

    def test_varies_through_day(self):
        scales = {
            round(diurnal_rate_scale(TRACE_START + hour * HOUR), 3)
            for hour in range(24)
        }
        assert len(scales) > 3


class TestMarkovLogGenerator:
    def test_rate_approximately_respected(self):
        rng = np.random.default_rng(1)
        messages = generator(rate=60.0).generate(
            "vpe00", TRACE_START, TRACE_START + 2 * DAY, rng
        )
        per_hour = len(messages) / 48.0
        assert 30 < per_hour < 90

    def test_messages_sorted_and_bounded(self):
        rng = np.random.default_rng(1)
        end = TRACE_START + DAY
        messages = generator().generate("vpe00", TRACE_START, end, rng)
        times = [m.timestamp for m in messages]
        assert times == sorted(times)
        assert all(TRACE_START <= t < end for t in times)

    def test_empty_interval(self):
        rng = np.random.default_rng(1)
        assert generator().generate(
            "vpe00", TRACE_START, TRACE_START, rng
        ) == []

    def test_host_stamped(self):
        rng = np.random.default_rng(1)
        messages = generator().generate(
            "vpe07", TRACE_START, TRACE_START + HOUR, rng
        )
        assert all(m.host == "vpe07" for m in messages)

    def test_sequential_structure_learnable(self):
        """With high coherence, the next template is far more
        predictable than the stationary distribution — the property
        the LSTM exploits."""
        rng = np.random.default_rng(2)
        messages = generator(coherence=0.95).generate(
            "vpe00", TRACE_START, TRACE_START + 5 * DAY, rng
        )
        processes = [m.text.split(":")[0] for m in messages]
        # empirical bigram concentration: P(next | current) should be
        # peaked (max conditional prob well above stationary max ~0.5)
        from collections import Counter, defaultdict
        bigrams = defaultdict(Counter)
        for a, b in zip(processes, processes[1:]):
            bigrams[a][b] += 1
        peaks = []
        for counter in bigrams.values():
            total = sum(counter.values())
            peaks.append(max(counter.values()) / total)
        assert np.mean(peaks) > 0.6

    def test_coherence_zero_is_iid(self):
        rng = np.random.default_rng(3)
        messages = generator(coherence=0.0, rate=120.0).generate(
            "vpe00", TRACE_START, TRACE_START + 2 * DAY, rng
        )
        kinds = [m.text.split(":")[0] for m in messages]
        frequency = {
            kind: kinds.count(kind) / len(kinds) for kind in set(kinds)
        }
        assert frequency["BGP_KEEPALIVE"] == pytest.approx(0.5, abs=0.1)

    def test_missing_spec_rejected(self):
        structure = build_structure(
            {"nonexistent_template": 1.0}, np.random.default_rng(0)
        )
        with pytest.raises(ValueError):
            MarkovLogGenerator(
                catalog_by_name(), structure, rate_per_hour=10.0
            )

    def test_invalid_params(self):
        structure = build_structure(
            simple_weights(), np.random.default_rng(0)
        )
        with pytest.raises(ValueError):
            MarkovLogGenerator(
                catalog_by_name(), structure, rate_per_hour=0.0
            )
        with pytest.raises(ValueError):
            MarkovLogGenerator(
                catalog_by_name(), structure, rate_per_hour=1.0,
                coherence=1.5,
            )
