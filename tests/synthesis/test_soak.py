"""Tests for repro.synthesis.soak (the update-drift soak preset)."""

import numpy as np
import pytest

from repro.ml.similarity import cosine_similarity
from repro.synthesis.fleet import FleetSimulator
from repro.synthesis.soak import (
    SOAK_UPDATE_FRACTION,
    update_soak_config,
)
from repro.timeutil import MONTH


class TestConfigShape:
    def test_whole_fleet_drifts(self):
        config = update_soak_config()
        assert config.update_fraction == SOAK_UPDATE_FRACTION == 1.0
        assert config.n_fleet_events == 0
        assert config.update_month == 1

    def test_update_must_land_inside_trace(self):
        with pytest.raises(ValueError, match="update_month"):
            update_soak_config(n_months=2, update_month=2)
        with pytest.raises(ValueError, match="update_month"):
            update_soak_config(n_months=2, update_month=0)

    def test_deterministic(self):
        a = FleetSimulator(
            update_soak_config(n_vpes=1, base_rate_per_hour=1.0)
        ).run()
        b = FleetSimulator(
            update_soak_config(n_vpes=1, base_rate_per_hour=1.0)
        ).run()
        rows_a = [
            (m.timestamp, m.host, m.text)
            for m in a.aggregate_messages()
        ]
        rows_b = [
            (m.timestamp, m.host, m.text)
            for m in b.aggregate_messages()
        ]
        assert rows_a == rows_b


class TestDistributionShift:
    def test_update_shifts_every_vpe(self):
        """The aggregate template mix before and after the update must
        diverge hard — that divergence is what the drift watcher sees
        as a collapsing cosine similarity."""
        config = update_soak_config(
            n_vpes=2, n_months=2, base_rate_per_hour=3.0
        )
        dataset = FleetSimulator(config).run()
        boundary = dataset.start + config.update_month * MONTH

        def mix(messages):
            counts = {}
            for message in messages:
                key = message.text.split(":", 1)[0]
                counts[key] = counts.get(key, 0) + 1
            return counts

        before = mix(
            dataset.aggregate_messages(end=boundary)
        )
        after = mix(
            dataset.aggregate_messages(start=boundary)
        )
        keys = sorted(set(before) | set(after))
        similarity = cosine_similarity(
            np.asarray([before.get(k, 0) for k in keys], float),
            np.asarray([after.get(k, 0) for k in keys], float),
        )
        assert similarity < 0.5
