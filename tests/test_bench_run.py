"""Regression tests for the benchmark runner's failure handling.

A suite that raises mid-run (or returns a malformed record) must exit
non-zero and leave the BENCH trajectory file exactly as it was —
never append a truncated or schema-less entry that later regression
comparisons would trip over.
"""

import json
import pathlib
import sys

import pytest

_BENCH_DIR = (
    pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "perf"
)
if str(_BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(_BENCH_DIR))

import run  # noqa: E402


GOOD_RECORD = {
    "timestamp": "2026-01-01T00:00:00",
    "scale": "reduced",
    "benchmarks": {"fake": {"metric": 1.0}},
}


@pytest.fixture
def trajectory(tmp_path):
    path = tmp_path / "BENCH_test.json"
    payload = {"runs": [{"scale": "seed", "benchmarks": {"x": {}}}]}
    path.write_text(json.dumps(payload))
    return path


def test_suite_exception_exits_nonzero_without_writing(
    monkeypatch, trajectory, capsys
):
    def explode(suite, scale):
        raise RuntimeError("benchmark blew up")

    monkeypatch.setattr(run, "run_suite", explode)
    before = trajectory.read_text()
    code = run.main(["hotpath", "--output", str(trajectory)])
    assert code == 1
    assert trajectory.read_text() == before
    assert "left untouched" in capsys.readouterr().err


@pytest.mark.parametrize(
    "record",
    [
        None,
        "not a dict",
        {},
        {"benchmarks": {}},
        {"benchmarks": {"x": {}}},  # missing scale
        {"scale": "reduced"},  # missing benchmarks
    ],
)
def test_malformed_record_exits_nonzero_without_writing(
    monkeypatch, trajectory, record
):
    monkeypatch.setattr(run, "run_suite", lambda suite, scale: record)
    before = trajectory.read_text()
    code = run.main(["hotpath", "--output", str(trajectory)])
    assert code == 1
    assert trajectory.read_text() == before


def test_valid_record_is_appended(monkeypatch, trajectory, capsys):
    monkeypatch.setattr(
        run, "run_suite", lambda suite, scale: dict(GOOD_RECORD)
    )
    monkeypatch.setattr(
        run, "_PRINTERS", {"hotpath": lambda record: None}
    )
    code = run.main(["hotpath", "--output", str(trajectory)])
    assert code == 0
    payload = json.loads(trajectory.read_text())
    assert len(payload["runs"]) == 2
    assert payload["runs"][-1] == GOOD_RECORD
    assert "appended to" in capsys.readouterr().out


def test_corrupt_trajectory_rejected_before_running(
    monkeypatch, tmp_path
):
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text("{truncated")

    def forbidden(suite, scale):
        raise AssertionError("suite must not run on a bad trajectory")

    monkeypatch.setattr(run, "run_suite", forbidden)
    with pytest.raises(SystemExit):
        run.main(["hotpath", "--output", str(bad)])
    assert bad.read_text() == "{truncated"


def test_validate_record_accepts_real_shape():
    assert run.validate_record(GOOD_RECORD) == ""
    assert run.validate_record({"benchmarks": 3, "scale": "x"}) != ""


def test_every_suite_has_printer_and_output():
    """A suite added to the dispatcher must also get a printer and a
    trajectory file, or ``main`` crashes after the slow run."""
    assert set(run._PRINTERS) == set(run.SUITE_OUTPUTS)
    for suite, path in run.SUITE_OUTPUTS.items():
        assert path.name == f"BENCH_{suite}.json"


def test_keep_prunes_oldest_runs(monkeypatch, trajectory):
    monkeypatch.setattr(
        run, "run_suite", lambda suite, scale: dict(GOOD_RECORD)
    )
    monkeypatch.setattr(
        run, "_PRINTERS", {"hotpath": lambda record: None}
    )
    for _ in range(3):
        code = run.main(
            ["hotpath", "--output", str(trajectory), "--keep", "2"]
        )
        assert code == 0
    payload = json.loads(trajectory.read_text())
    assert len(payload["runs"]) == 2
    # the seed run was the oldest: pruned first
    assert all(r["scale"] == "reduced" for r in payload["runs"])


def test_keep_zero_disables_pruning(monkeypatch, trajectory):
    monkeypatch.setattr(
        run, "run_suite", lambda suite, scale: dict(GOOD_RECORD)
    )
    monkeypatch.setattr(
        run, "_PRINTERS", {"hotpath": lambda record: None}
    )
    for _ in range(3):
        run.main(["hotpath", "--output", str(trajectory), "--keep", "0"])
    payload = json.loads(trajectory.read_text())
    assert len(payload["runs"]) == 4  # seed + 3 appends


def test_default_keep_bounds_trajectory(monkeypatch, tmp_path):
    path = tmp_path / "BENCH_deep.json"
    path.write_text(
        json.dumps({"runs": [dict(GOOD_RECORD)] * (run.DEFAULT_KEEP + 5)})
    )
    monkeypatch.setattr(
        run, "run_suite", lambda suite, scale: dict(GOOD_RECORD)
    )
    monkeypatch.setattr(
        run, "_PRINTERS", {"hotpath": lambda record: None}
    )
    assert run.main(["hotpath", "--output", str(path)]) == 0
    payload = json.loads(path.read_text())
    assert len(payload["runs"]) == run.DEFAULT_KEEP


def test_negative_keep_rejected(monkeypatch, trajectory):
    def forbidden(suite, scale):
        raise AssertionError("suite must not run on bad arguments")

    monkeypatch.setattr(run, "run_suite", forbidden)
    with pytest.raises(SystemExit):
        run.main(["hotpath", "--output", str(trajectory), "--keep", "-1"])


def test_append_record_rejects_negative_keep(trajectory):
    with pytest.raises(ValueError, match="keep"):
        run.append_record(dict(GOOD_RECORD), trajectory, keep=-3)


def test_duplicate_suite_registration_rejected():
    with pytest.raises(ValueError, match="duplicate benchmark suite"):
        run.register_suite(
            "hotpath", lambda record: None, lambda scale: {}
        )
    # the failed registration must not clobber the original
    assert run.SUITE_OUTPUTS["hotpath"].name == "BENCH_hotpath.json"


def test_register_suite_derives_trajectory_path():
    name = "zz_probe"
    try:
        run.register_suite(name, lambda r: None, lambda s: {})
        assert run.SUITE_OUTPUTS[name] == run.ROOT / "BENCH_zz_probe.json"
        assert name in run._PRINTERS
        assert name in run._RUNNERS
    finally:
        run.SUITE_OUTPUTS.pop(name, None)
        run._PRINTERS.pop(name, None)
        run._RUNNERS.pop(name, None)


def test_help_lists_every_registered_suite(capsys):
    with pytest.raises(SystemExit) as excinfo:
        run.main(["--help"])
    assert excinfo.value.code == 0
    text = capsys.readouterr().out
    for suite in run.SUITE_OUTPUTS:
        assert suite in text


def test_unknown_suite_raises_value_error():
    with pytest.raises(ValueError, match="unknown suite"):
        run.run_suite("nonesuch", "reduced")
