"""Tests for repro.logs.message."""

import pytest

from repro.logs.message import (
    Facility,
    Severity,
    SyslogMessage,
    decode_priority,
    encode_priority,
)
from tests.conftest import make_message


class TestSeverity:
    def test_ordering_matches_rfc(self):
        assert Severity.EMERGENCY < Severity.DEBUG

    def test_actionable_boundary(self):
        assert Severity.WARNING.is_actionable
        assert Severity.ERROR.is_actionable
        assert not Severity.NOTICE.is_actionable
        assert not Severity.INFO.is_actionable


class TestPriority:
    def test_encode_known_value(self):
        # daemon(3) * 8 + error(3) = 27
        assert encode_priority(Facility.DAEMON, Severity.ERROR) == 27

    def test_roundtrip_all_combinations(self):
        for facility in Facility:
            for severity in Severity:
                pri = encode_priority(facility, severity)
                assert decode_priority(pri) == (facility, severity)

    def test_decode_out_of_range(self):
        with pytest.raises(ValueError):
            decode_priority(192)
        with pytest.raises(ValueError):
            decode_priority(-1)


class TestSyslogMessage:
    def test_str_contains_pri_host_process(self):
        message = make_message()
        rendered = str(message)
        assert rendered.startswith("<30>")
        assert "vpe00" in rendered
        assert "rpd:" in rendered

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            make_message(timestamp=-1.0)

    def test_empty_host_rejected(self):
        with pytest.raises(ValueError):
            make_message(host="")

    def test_empty_process_rejected(self):
        with pytest.raises(ValueError):
            make_message(process="")

    def test_with_template_preserves_fields(self):
        message = make_message()
        annotated = message.with_template(7)
        assert annotated.template_id == 7
        assert annotated.text == message.text
        assert annotated.timestamp == message.timestamp

    def test_template_id_excluded_from_equality(self):
        message = make_message()
        assert message.with_template(1) == message.with_template(2)

    def test_frozen(self):
        message = make_message()
        with pytest.raises(AttributeError):
            message.text = "changed"
