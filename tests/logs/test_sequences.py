"""Tests for repro.logs.sequences."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.logs.sequences import (
    N_GAP_BUCKETS,
    SequenceWindower,
    events_from_messages,
    gap_bucket,
)
from repro.timeutil import TRACE_START
from tests.conftest import make_message


class TestGapBucket:
    def test_boundaries(self):
        assert gap_bucket(0.0) == 0
        assert gap_bucket(0.99) == 0
        assert gap_bucket(1.0) == 1
        assert gap_bucket(59.0) == 2
        assert gap_bucket(599.0) == 3
        assert gap_bucket(3599.0) == 4
        assert gap_bucket(3600.0) == N_GAP_BUCKETS - 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gap_bucket(-1.0)

    @given(st.floats(min_value=0, max_value=1e7, allow_nan=False))
    def test_monotone(self, gap):
        assert 0 <= gap_bucket(gap) < N_GAP_BUCKETS


def annotated_stream(n=20, spacing=5.0):
    return [
        make_message(timestamp=TRACE_START + i * spacing).with_template(
            (i % 3) + 1
        )
        for i in range(n)
    ]


class TestEventsFromMessages:
    def test_first_event_gets_max_gap(self):
        events = events_from_messages(annotated_stream())
        assert events[0].gap_bucket == N_GAP_BUCKETS - 1

    def test_gaps_reflect_spacing(self):
        events = events_from_messages(annotated_stream(spacing=5.0))
        assert all(e.gap_bucket == 1 for e in events[1:])

    def test_unannotated_rejected(self):
        with pytest.raises(ValueError):
            events_from_messages([make_message()])

    def test_unsorted_rejected(self):
        messages = [
            make_message(timestamp=TRACE_START + 10).with_template(1),
            make_message(timestamp=TRACE_START).with_template(1),
        ]
        with pytest.raises(ValueError):
            events_from_messages(messages)


class TestSequenceWindower:
    def test_shapes(self):
        windower = SequenceWindower(window=5)
        contexts, targets, times = windower.windows_from_messages(
            annotated_stream(n=20)
        )
        assert contexts.shape == (15, 5, 2)
        assert targets.shape == (15,)
        assert times.shape == (15,)

    def test_target_is_next_template(self):
        windower = SequenceWindower(window=3)
        stream = annotated_stream(n=10)
        contexts, targets, _ = windower.windows_from_messages(stream)
        ids = [m.template_id for m in stream]
        for i in range(len(targets)):
            assert list(contexts[i, :, 0]) == ids[i:i + 3]
            assert targets[i] == ids[i + 3]

    def test_target_times_align(self):
        windower = SequenceWindower(window=3)
        stream = annotated_stream(n=10)
        _, _, times = windower.windows_from_messages(stream)
        expected = [m.timestamp for m in stream[3:]]
        assert list(times) == expected

    def test_too_short_stream_yields_empty(self):
        windower = SequenceWindower(window=10)
        contexts, targets, times = windower.windows_from_messages(
            annotated_stream(n=5)
        )
        assert contexts.shape == (0, 10, 2)
        assert targets.size == 0 and times.size == 0

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            SequenceWindower(window=0)

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=40))
    def test_count_property(self, window, n):
        windower = SequenceWindower(window=window)
        contexts, targets, _ = windower.windows_from_messages(
            annotated_stream(n=n)
        )
        assert contexts.shape[0] == max(n - window, 0)
        assert targets.shape[0] == max(n - window, 0)
