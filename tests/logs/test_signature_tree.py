"""Tests for repro.logs.signature_tree."""

import pytest
from hypothesis import given, strategies as st

from repro.logs.signature_tree import (
    WILDCARD,
    SignatureTree,
    _agreement,
    _matches,
    _merge,
    is_variable_token,
    render_signature,
    tokenize,
)
from tests.conftest import make_message


class TestTokenize:
    def test_basic_split(self):
        assert tokenize("a b  c") == ["a", "b", "c"]

    def test_empty(self):
        assert tokenize("") == []

    def test_punctuation_kept(self):
        assert tokenize("peer 10.0.0.1, down") == [
            "peer", "10.0.0.1,", "down",
        ]


class TestVariableTokens:
    @pytest.mark.parametrize(
        "token",
        [
            "12345",
            "10.0.0.1",
            "10.0.0.1:179",
            "0xdeadbeef",
            "ge-0/0/1",
            "ge-0/0/1.100",
            "150ms",
            "99%",
        ],
    )
    def test_variable(self, token):
        assert is_variable_token(token)

    @pytest.mark.parametrize(
        "token", ["BGP_KEEPALIVE:", "peer", "down", "rpd"]
    )
    def test_stable(self, token):
        assert not is_variable_token(token)


class TestSignatureAlgebra:
    def test_agreement_identical(self):
        assert _agreement(("a", "b"), ("a", "b")) == 1.0

    def test_agreement_wildcard_counts(self):
        assert _agreement((WILDCARD, "b"), ("x", "b")) == 1.0

    def test_agreement_partial(self):
        assert _agreement(("a", "b"), ("a", "c")) == 0.5

    def test_agreement_length_mismatch(self):
        with pytest.raises(ValueError):
            _agreement(("a",), ("a", "b"))

    def test_merge_wildcards_disagreement(self):
        assert _merge(("a", "b"), ("a", "c")) == ("a", WILDCARD)

    def test_matches_respects_wildcard(self):
        assert _matches(("a", WILDCARD), ("a", "anything"))
        assert not _matches(("a", WILDCARD), ("b", "anything"))


class TestSignatureTree:
    def test_same_template_same_signature(self):
        tree = SignatureTree()
        first = tree.insert(make_message(
            text="BGP_KEEPALIVE: keepalive received from peer 10.0.0.1"
        ))
        second = tree.insert(make_message(
            text="BGP_KEEPALIVE: keepalive received from peer 10.9.9.9"
        ))
        assert first == second
        assert tree.n_signatures == 1

    def test_variable_positions_wildcarded(self):
        tree = SignatureTree()
        signature = tree.insert(make_message(
            text="OSPF_SPF: SPF computation completed in 15 ms"
        ))
        assert WILDCARD in signature
        assert "OSPF_SPF:" in signature

    def test_different_processes_not_merged(self):
        tree = SignatureTree()
        tree.insert(make_message(process="rpd", text="STATUS: ok ok"))
        tree.insert(make_message(process="snmpd", text="STATUS: ok ok"))
        assert tree.n_signatures == 2

    def test_different_token_counts_not_merged(self):
        tree = SignatureTree()
        tree.insert(make_message(text="LINK: up"))
        tree.insert(make_message(text="LINK: up now"))
        assert tree.n_signatures == 2

    def test_near_duplicates_merge_into_wildcard(self):
        tree = SignatureTree(merge_threshold=0.7)
        tree.insert(make_message(text="SESSION: peer alpha established ok"))
        tree.insert(make_message(text="SESSION: peer beta established ok"))
        assert tree.n_signatures == 1
        (_, signature, support), = tree.signatures()
        assert support == 2
        assert signature[2] is WILDCARD

    def test_dissimilar_messages_stay_separate(self):
        tree = SignatureTree(merge_threshold=0.7)
        tree.insert(make_message(text="AAA BBB CCC DDD"))
        tree.insert(make_message(text="WWW XXX YYY ZZZ"))
        assert tree.n_signatures == 2

    def test_lookup_without_mutation(self):
        tree = SignatureTree()
        message = make_message(text="LINK: up on port 7")
        assert tree.lookup(message) is None
        tree.insert(message)
        assert tree.lookup(message) is not None
        assert tree.n_signatures == 1

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            SignatureTree(merge_threshold=0.0)
        with pytest.raises(ValueError):
            SignatureTree(merge_threshold=1.5)

    def test_supports_accumulate(self):
        tree = SignatureTree()
        for _ in range(5):
            tree.insert(make_message(text="NTP: sync ok"))
        (_, _, support), = tree.signatures()
        assert support == 5

    @given(
        st.lists(
            st.integers(min_value=0, max_value=9999),
            min_size=1,
            max_size=30,
        )
    )
    def test_numeric_variants_always_one_signature(self, numbers):
        """Any number of numeric variants of one template mine to one
        signature — numbers are variable by shape."""
        tree = SignatureTree()
        for number in numbers:
            tree.insert(make_message(
                text=f"FW_MATCH: filter matched {number} packets"
            ))
        assert tree.n_signatures == 1


class TestRenderSignature:
    def test_render(self):
        assert render_signature(("A", WILDCARD, "B")) == "A <*> B"
