"""Tests for repro.logs.templates."""

import pytest

from repro.logs.templates import UNKNOWN_TEMPLATE_ID, TemplateStore
from tests.conftest import make_message


def corpus():
    texts = [
        "BGP_KEEPALIVE: keepalive received from peer 10.0.0.1",
        "BGP_KEEPALIVE: keepalive received from peer 10.0.0.2",
        "OSPF_HELLO: hello from neighbor 10.1.1.1 on ge-0/0/1",
        "NTP_SYNC: clock synchronized to 10.2.2.2 offset 12 ms",
    ]
    return [make_message(text=text) for text in texts]


class TestFit:
    def test_vocabulary_counts_unknown_slot(self):
        store = TemplateStore().fit(corpus())
        # 3 distinct templates + the unknown id
        assert store.vocabulary_size == 4

    def test_match_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TemplateStore().match(make_message())

    def test_ids_are_dense_and_start_at_one(self):
        store = TemplateStore().fit(corpus())
        ids = sorted(t.template_id for t in store.templates())
        assert ids == [1, 2, 3]

    def test_refit_restarts(self):
        store = TemplateStore().fit(corpus())
        store.fit([make_message(text="ONLY: one template here")])
        assert store.vocabulary_size == 2


class TestMatch:
    def test_known_message_gets_nonzero_id(self):
        store = TemplateStore().fit(corpus())
        assert store.match(corpus()[0]) >= 1

    def test_variants_share_id(self):
        store = TemplateStore().fit(corpus())
        first = store.match(make_message(
            text="BGP_KEEPALIVE: keepalive received from peer 10.5.5.5"
        ))
        second = store.match(corpus()[0])
        assert first == second

    def test_unknown_message_maps_to_zero(self):
        store = TemplateStore().fit(corpus())
        unknown = make_message(
            text="TOTALLY_NEW: never seen before message shape here"
        )
        assert store.match(unknown) == UNKNOWN_TEMPLATE_ID


class TestExtend:
    def test_extend_preserves_existing_ids(self):
        store = TemplateStore().fit(corpus())
        before = {
            t.render(): t.template_id for t in store.templates()
        }
        added = store.extend([
            make_message(text="NEW_EVENT: something different entirely")
        ])
        assert added == 1
        after = {t.render(): t.template_id for t in store.templates()}
        for rendered, template_id in before.items():
            assert after[rendered] == template_id

    def test_extended_template_becomes_known(self):
        store = TemplateStore().fit(corpus())
        novel = make_message(text="NEW_EVENT: something quite different")
        assert store.match(novel) == UNKNOWN_TEMPLATE_ID
        store.extend([novel])
        assert store.match(novel) >= 1

    def test_extend_before_fit_acts_as_fit(self):
        store = TemplateStore()
        store.extend(corpus())
        assert store.fitted
        assert store.vocabulary_size == 4


class TestMemo:
    def test_memoized_match_agrees_with_uncached(self):
        cached = TemplateStore().fit(corpus())
        uncached = TemplateStore(memo_capacity=0).fit(corpus())
        stream = corpus() * 3 + [
            make_message(
                text="BGP_KEEPALIVE: keepalive received from peer 10.9.9.9"
            )
        ]
        assert [cached.match(m) for m in stream] == [
            uncached.match(m) for m in stream
        ]
        hits, misses = cached.memo_stats
        assert hits > 0

    def test_exact_text_memo_dropped_by_extend(self):
        store = TemplateStore().fit(corpus())
        novel = make_message(text="NEW_EVENT: counter 1 rolled over")
        # Warm the exact-(process, text) LRU with the unknown verdict.
        assert store.match(novel) == UNKNOWN_TEMPLATE_ID
        assert store.match(novel) == UNKNOWN_TEMPLATE_ID
        store.extend([novel])
        # The verbatim text must not replay the stale cached 0.
        assert store.match(novel) >= 1

    def test_presig_memo_dropped_by_extend(self):
        store = TemplateStore().fit(corpus())
        # Warm the (process, presignature) memo: two variants of the
        # same shape share a presignature but not an exact text.
        assert store.match(
            make_message(text="NEW_EVENT: counter 1 rolled over")
        ) == UNKNOWN_TEMPLATE_ID
        store.extend(
            [make_message(text="NEW_EVENT: counter 2 rolled over")]
        )
        # A third variant misses the text LRU and would hit a stale
        # presignature entry if extend did not clear it.
        assert store.match(
            make_message(text="NEW_EVENT: counter 3 rolled over")
        ) >= 1

    def test_cached_transform_equals_uncached_across_extend(self):
        cached = TemplateStore().fit(corpus())
        uncached = TemplateStore(memo_capacity=0).fit(corpus())
        novel = [
            make_message(text="LINK_FLAP: interface ge-0/0/3 down 10 ms"),
            make_message(text="LINK_FLAP: interface ge-0/0/7 down 25 ms"),
        ]
        stream = corpus() + novel + corpus()
        for store in (cached, uncached):
            store.transform(stream)  # warm (no-op for uncached)
            store.extend(novel)
        want = [m.template_id for m in uncached.transform(stream)]
        got = [m.template_id for m in cached.transform(stream)]
        assert got == want
        assert all(tid >= 1 for tid in got)

    def test_match_ids_matches_scalar_match(self):
        store = TemplateStore().fit(corpus())
        stream = corpus() * 2
        ids = store.match_ids(stream)
        assert ids.tolist() == [store.match(m) for m in stream]


class TestTransformAndLookup:
    def test_transform_annotates_all(self):
        store = TemplateStore().fit(corpus())
        annotated = store.transform(corpus())
        assert all(m.template_id is not None for m in annotated)

    def test_template_lookup_roundtrip(self):
        store = TemplateStore().fit(corpus())
        for template in store.templates():
            assert (
                store.template(template.template_id).render()
                == template.render()
            )

    def test_template_zero_is_none(self):
        store = TemplateStore().fit(corpus())
        assert store.template(0) is None

    def test_template_bad_id_raises(self):
        store = TemplateStore().fit(corpus())
        with pytest.raises(KeyError):
            store.template(999)
