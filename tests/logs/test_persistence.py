"""Tests for repro.logs.persistence (template-store JSON roundtrip)."""

import json

import numpy as np
import pytest

from repro.logs.persistence import store_from_json, store_to_json
from repro.logs.templates import TemplateStore
from repro.synthesis.catalog import ROUTINE_TEMPLATES
from repro.timeutil import TRACE_START
from tests.conftest import make_message


def corpus():
    rng = np.random.default_rng(0)
    return [
        spec.render(TRACE_START + i, "vpe00", rng)
        for i, spec in enumerate(ROUTINE_TEMPLATES)
        for _ in range(3)
    ]


class TestRoundtrip:
    def test_ids_preserved(self):
        store = TemplateStore().fit(corpus())
        rebuilt = store_from_json(store_to_json(store))
        assert rebuilt.vocabulary_size == store.vocabulary_size
        for template in store.templates():
            twin = rebuilt.template(template.template_id)
            assert twin.process == template.process
            assert twin.signature == template.signature
            assert twin.support == template.support

    def test_matching_behaviour_identical(self):
        store = TemplateStore().fit(corpus())
        rebuilt = store_from_json(store_to_json(store))
        rng = np.random.default_rng(42)
        probes = [
            spec.render(TRACE_START + 100 + i, "vpe09", rng)
            for i, spec in enumerate(ROUTINE_TEMPLATES)
        ]
        probes.append(make_message(
            text="NEVER_SEEN: completely novel message body here"
        ))
        for probe in probes:
            assert rebuilt.match(probe) == store.match(probe)

    def test_rebuilt_store_can_extend(self):
        store = TemplateStore().fit(corpus())
        rebuilt = store_from_json(store_to_json(store))
        added = rebuilt.extend([
            make_message(text="BRAND_NEW: extension event occurred")
        ])
        assert added == 1

    def test_document_is_json(self):
        store = TemplateStore().fit(corpus())
        payload = json.loads(store_to_json(store))
        assert payload["version"] == 1
        assert len(payload["templates"]) == store.vocabulary_size - 1


class TestValidation:
    def test_unfitted_store_rejected(self):
        with pytest.raises(ValueError):
            store_to_json(TemplateStore())

    def test_bad_version_rejected(self):
        store = TemplateStore().fit(corpus())
        payload = json.loads(store_to_json(store))
        payload["version"] = 99
        with pytest.raises(ValueError):
            store_from_json(json.dumps(payload))

    def test_non_dense_ids_rejected(self):
        store = TemplateStore().fit(corpus())
        payload = json.loads(store_to_json(store))
        payload["templates"][0]["id"] = 999
        with pytest.raises(ValueError):
            store_from_json(json.dumps(payload))
