"""Tests for repro.logs.syslog_format."""

import pytest
from hypothesis import given, strategies as st

from repro.logs.message import Facility, Severity, SyslogMessage
from repro.logs.syslog_format import format_rfc3164, parse_rfc3164
from repro.timeutil import TRACE_START
from tests.conftest import make_message


class TestFormat:
    def test_known_line(self):
        message = SyslogMessage(
            timestamp=TRACE_START,  # 2016-10-01 00:00:00 UTC
            host="vpe07",
            process="rpd",
            text="BGP_KEEPALIVE: hello",
            severity=Severity.INFO,
            facility=Facility.DAEMON,
        )
        line = format_rfc3164(message)
        assert line == "<30>Oct  1 00:00:00 vpe07 rpd: BGP_KEEPALIVE: hello"

    def test_single_digit_day_space_padded(self):
        message = make_message(timestamp=TRACE_START)
        assert "Oct  1" in format_rfc3164(message)


class TestParse:
    def test_roundtrip(self):
        message = make_message(timestamp=TRACE_START + 3600)
        parsed = parse_rfc3164(format_rfc3164(message), year_origin=2016)
        assert parsed.timestamp == message.timestamp
        assert parsed.host == message.host
        assert parsed.process == message.process
        assert parsed.text == message.text
        assert parsed.severity == message.severity
        assert parsed.facility == message.facility

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_rfc3164("not a syslog line")

    def test_rejects_missing_pri(self):
        with pytest.raises(ValueError):
            parse_rfc3164("Oct  1 00:00:00 vpe07 rpd: hello")

    def test_rejects_bad_month(self):
        with pytest.raises(ValueError):
            parse_rfc3164("<30>Xyz  1 00:00:00 vpe07 rpd: hello")

    @given(
        # TRACE_START is 2016-10-01; stay inside 2016 so the year_origin
        # hint recovers the exact timestamp.
        offset=st.integers(min_value=0, max_value=80 * 24 * 3600),
        severity=st.sampled_from(list(Severity)),
        facility=st.sampled_from(list(Facility)),
    )
    def test_roundtrip_property(self, offset, severity, facility):
        message = SyslogMessage(
            timestamp=float(TRACE_START + offset),
            host="vpe01",
            process="chassisd",
            text="CHASSISD_POLL: ok",
            severity=severity,
            facility=facility,
        )
        parsed = parse_rfc3164(format_rfc3164(message), year_origin=2016)
        # RFC 3164 timestamps have second resolution and no year, so
        # within one origin year the roundtrip must be exact.
        assert parsed.timestamp == message.timestamp
        assert parsed.severity == severity
        assert parsed.facility == facility
