"""Repository-consistency checks: docs reference real artifacts.

DESIGN.md promises a bench per experiment and EXPERIMENTS.md cites
bench modules; these tests keep those promises honest as the code
evolves.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent


def read(name):
    return (ROOT / name).read_text()


class TestDesignDoc:
    def test_every_cited_bench_exists(self):
        cited = set(
            re.findall(r"benchmarks/(test_\w+\.py)", read("DESIGN.md"))
        )
        assert cited, "DESIGN.md must cite bench modules"
        for name in cited:
            assert (ROOT / "benchmarks" / name).exists(), name

    def test_every_bench_is_indexed(self):
        """Each benchmark module appears in DESIGN.md (experiment
        index or ablation table)."""
        design = read("DESIGN.md")
        benches = sorted(
            p.name
            for p in (ROOT / "benchmarks").glob("test_*.py")
        )
        missing = [
            name for name in benches if name not in design
        ]
        assert not missing, f"unindexed benches: {missing}"

    def test_inventory_modules_exist(self):
        design = read("DESIGN.md")
        for dotted in set(re.findall(r"`repro\.([\w.]+)`", design)):
            path = ROOT / "src" / "repro"
            parts = dotted.split(".")
            candidates = [
                path.joinpath(*parts).with_suffix(".py"),
                path.joinpath(*parts) / "__init__.py",
            ]
            assert any(c.exists() for c in candidates), dotted


class TestExperimentsDoc:
    def test_cited_benches_exist(self):
        cited = set(
            re.findall(r"(test_\w+\.py)", read("EXPERIMENTS.md"))
        )
        assert cited
        for name in cited:
            assert (ROOT / "benchmarks" / name).exists(), name


class TestReadme:
    def test_examples_exist(self):
        readme = read("README.md")
        for name in set(re.findall(r"examples/(\w+\.py)", readme)):
            assert (ROOT / "examples" / name).exists(), name

    def test_quickstart_mentioned(self):
        assert "examples/quickstart.py" in read("README.md")


class TestExamples:
    def test_every_example_has_module_docstring_and_main(self):
        for path in (ROOT / "examples").glob("*.py"):
            source = path.read_text()
            assert source.lstrip().startswith(
                ("#!/usr/bin/env python3", '"""')
            ), path.name
            assert "def main()" in source, path.name
            assert '__name__ == "__main__"' in source, path.name


class TestServiceDocs:
    """README's service section mirrors the real serve CLI."""

    def test_readme_has_service_section(self):
        assert "## Running as a service" in read("README.md")

    def test_every_serve_flag_documented(self):
        from repro.cli import build_parser

        parser = build_parser()
        subparsers = next(
            action
            for action in parser._actions
            if hasattr(action, "choices") and action.choices
        )
        serve = subparsers.choices["serve"]
        flags = {
            option
            for action in serve._actions
            for option in action.option_strings
            if option.startswith("--") and option != "--help"
        }
        assert flags, "serve must define long options"
        readme = read("README.md")
        section = readme.split("## Running as a service", 1)[1]
        section = section.split("\n## ", 1)[0]
        missing = sorted(f for f in flags if f not in section)
        assert not missing, (
            f"serve flags absent from the README service section: "
            f"{missing}"
        )

    def test_design_documents_runtime_layer(self):
        design = read("DESIGN.md")
        assert "repro.runtime" in design
        assert "python -m repro serve" in design


class TestStaticAnalysisDocs:
    """The README codes table mirrors `python -m repro check --list`."""

    def _readme_table(self):
        readme = read("README.md")
        rows = re.findall(
            r"^\| (RPR\d{3}) \| (.+?) \|$", readme, flags=re.MULTILINE
        )
        return {code: rationale.strip() for code, rationale in rows}

    def test_readme_codes_match_list_output(self):
        from repro.devtools.cli import code_rationales

        table = self._readme_table()
        assert table, "README must carry the RPR codes table"
        assert table == code_rationales()

    def test_design_mentions_invariant_checker(self):
        design = read("DESIGN.md")
        assert "repro.devtools" in design
        assert "python -m repro check" in design


class TestFleetDocs:
    """README's fleet section mirrors the fleet CLI and BENCH table."""

    def section(self):
        readme = read("README.md")
        assert "## Fleet serving" in readme
        section = readme.split("## Fleet serving", 1)[1]
        return section.split("\n## ", 1)[0]

    def test_fleet_flags_documented(self):
        section = self.section()
        for flag in ("--shards", "--kill-shard", "--after-ticks"):
            assert flag in section, flag

    def test_fleet_mechanics_documented(self):
        section = self.section()
        for term in (
            "ring.jsonl",
            "shard-NN/",
            "BENCH_fleet.json",
            "sort -u",
            "--merge",
        ):
            assert term in section, term

    def newest_default_run(self):
        import json

        payload = json.loads(read("BENCH_fleet.json"))
        runs = [
            run
            for run in payload["runs"]
            if run.get("scale") == "default"
        ]
        assert runs, "BENCH_fleet.json must hold a default-scale run"
        return runs[-1]

    def test_bench_fleet_trajectory_shape(self):
        record = self.newest_default_run()
        assert "fleet_scaling" in record["benchmarks"]
        assert "kill_drill" in record["benchmarks"]
        drill = record["benchmarks"]["kill_drill"]
        assert drill["score_parity"] is True
        assert drill["dropped_rows"] == 0
        assert drill["double_scored_rows"] == 0

    def test_readme_table_matches_newest_default_run(self):
        """The README throughput table cites the newest default-scale
        BENCH_fleet.json run: 1-shard baselines as msgs/s, multi-shard
        points as scaling ratios.  Rerun the suite, refresh the table."""
        section = self.section()
        record = self.newest_default_run()
        for point in record["benchmarks"]["fleet_scaling"]["sweep"]:
            if point["shards"] == 1:
                cell = f"{round(point['msgs_per_s']):,} msgs/s"
            else:
                cell = f"{point['scaling_vs_1shard']:.2f}×"
            assert cell in section, (
                f"devices={point['devices']} shards={point['shards']}:"
                f" expected {cell!r} in the README fleet table"
            )

    def test_design_documents_fleet_layer(self):
        design = read("DESIGN.md")
        assert "repro.runtime.fleet" in design
        assert "repro.runtime.ring" in design
        assert "serve\n  --shards N" in design or "--shards" in design


class TestAdaptDocs:
    """README's adaptation section mirrors the adapt CLI and BENCH
    table."""

    def section(self):
        readme = read("README.md")
        assert "## Live adaptation" in readme
        section = readme.split("## Live adaptation", 1)[1]
        return section.split("\n## ", 1)[0]

    def test_adapt_flags_documented(self):
        section = self.section()
        for flag in (
            "--auto-adapt",
            "--drift-threshold",
            "--drift-checks",
            "--adapt-replay-ticks",
            "--probation-ticks",
            "--rollback-ratio",
            "--adapt-epochs",
            "--adapt-cooldown-ticks",
            "--adapt-inline",
            "--adapt-poison",
        ):
            assert flag in section, flag

    def test_adapt_mechanics_documented(self):
        section = self.section()
        for term in (
            "cosine",
            "probation",
            "store.rollback()",
            "adapt.swap.applied",
            "adapt.rollback.applied",
            "BENCH_adapt.json",
            "drift-soak-e2e",
        ):
            assert term in section, term

    def newest_default_run(self):
        import json

        payload = json.loads(read("BENCH_adapt.json"))
        runs = [
            run
            for run in payload["runs"]
            if run.get("scale") == "default"
        ]
        assert runs, "BENCH_adapt.json must hold a default-scale run"
        return runs[-1]

    def test_bench_adapt_trajectory_shape(self):
        record = self.newest_default_run()["benchmarks"]
        assert record["fine_tune"]["replay_messages"] > 0
        assert record["background_ingest"]["tuning_ticks"] > 0
        assert record["background_ingest"]["dip_fraction"] < 0.20

    def test_readme_table_matches_newest_default_run(self):
        """The README cost table cites the newest default-scale
        BENCH_adapt.json run.  Rerun the suite, refresh the table."""
        section = self.section()
        record = self.newest_default_run()["benchmarks"]
        tune = record["fine_tune"]
        ingest = record["background_ingest"]
        cells = [
            f"{tune['replay_messages']:,} msgs × {tune['epochs']} epochs",
            f"{tune['fine_tune_s']:.2f} s",
            f"{round(tune['train_msgs_per_s']):,} msgs/s",
            f"{tune['publish_s'] * 1000:.1f} ms",
            f"{record['swap_pause']['pause_s'] * 1000:.1f} ms",
            f"{round(ingest['tuning_msgs_per_s']):,} vs "
            f"{round(ingest['baseline_msgs_per_s']):,} msgs/s",
            f"{ingest['dip_fraction'] * 100:.1f}% dip",
        ]
        for cell in cells:
            assert cell in section, (
                f"expected {cell!r} in the README adaptation table"
            )

    def test_design_documents_adapt_layer(self):
        design = read("DESIGN.md")
        assert "repro.runtime.adapt" in design
        assert "--auto-adapt" in design


class TestRcaDocs:
    """README's root-cause section mirrors the rca CLI and BENCH
    table."""

    def section(self):
        readme = read("README.md")
        assert "## Root-cause analysis" in readme
        section = readme.split("## Root-cause analysis", 1)[1]
        return section.split("\n## ", 1)[0]

    def test_rca_flags_documented(self):
        section = self.section()
        for flag in (
            "--rca",
            "--topology",
            "--incidents-out",
            "--rca-gap",
            "--scenario correlated-outage",
        ):
            assert flag in section, flag

    def test_cause_taxonomy_documented(self):
        from repro.topology.graph import (
            KIND_CABLE,
            KIND_CIRCUIT,
            KIND_DEVICE,
            KIND_SITE,
            KIND_SOFTWARE,
        )

        section = self.section()
        for kind in (
            KIND_CABLE,
            KIND_CIRCUIT,
            KIND_DEVICE,
            KIND_SITE,
            KIND_SOFTWARE,
        ):
            assert f"| `{kind}` |" in section, kind

    def test_rca_mechanics_documented(self):
        section = self.section()
        for term in (
            "topology.json",
            "incidents.csv",
            "attenuation",
            "RCA_STATE_VERSION",
            "rca.incidents_opened",
            "rca.attribution_seconds",
            "sort -u",
            "BENCH_rca.json",
            "rca-e2e",
        ):
            assert term in section, term

    def newest_default_run(self):
        import json

        payload = json.loads(read("BENCH_rca.json"))
        runs = [
            run
            for run in payload["runs"]
            if run.get("scale") == "default"
        ]
        assert runs, "BENCH_rca.json must hold a default-scale run"
        return runs[-1]

    def test_bench_rca_trajectory_shape(self):
        record = self.newest_default_run()["benchmarks"]
        assert record["attribution"]["macro_f1"] >= 0.80
        assert record["overhead"]["overhead_fraction"] < 0.05

    def test_readme_table_matches_newest_default_run(self):
        """The README metric table cites the newest default-scale
        BENCH_rca.json run.  Rerun the suite, refresh the table."""
        section = self.section()
        record = self.newest_default_run()["benchmarks"]
        attribution = record["attribution"]
        overhead = record["overhead"]
        storm = record["storm"]
        cells = [
            f"{attribution['macro_f1']:.3f}",
            f"{attribution['element_accuracy']:.2f}",
            f"{attribution['n_matched']}/{attribution['n_outages']} "
            f"matched, {attribution['n_spurious']} spurious",
            f"{attribution['mean_detection_s']:.0f} s",
            f"{attribution['mean_attribution_s'] / 3600:.1f} h",
            f"{overhead['overhead_fraction'] * 100:.2f}%",
            f"{storm['per_anomaly_us']:.1f} µs per anomaly",
        ]
        for cell in cells:
            assert cell in section, (
                f"expected {cell!r} in the README rca table"
            )

    def test_design_documents_rca_layer(self):
        design = read("DESIGN.md")
        assert "repro.topology" in design
        assert "repro.rca" in design
        assert "--rca" in design
        assert "correlated-outage" in design
