"""Tests for repro.runtime.wal (the tick journal).

The failure-mode tests damage real segment bytes on disk: truncating
the tail simulates a crash mid-append (tolerated), flipping bytes in
the middle simulates corruption at rest (refused).
"""

import struct

import pytest

from repro.runtime.wal import (
    WalCorruptionError,
    WriteAheadLog,
)

_HEADER = struct.Struct("<QII")


def fill(wal, n, start=1, payload=b"x" * 40):
    for seq in range(start, start + n):
        wal.append(seq, payload + str(seq).encode())


class TestAppendReplay:
    def test_roundtrip(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(1, b"alpha")
            wal.append(2, b"bravo")
        with WriteAheadLog(tmp_path) as wal:
            records = list(wal.replay())
        assert [(r.sequence, r.payload) for r in records] == [
            (1, b"alpha"),
            (2, b"bravo"),
        ]

    def test_replay_after_cursor(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            fill(wal, 10)
            assert [r.sequence for r in wal.replay(after=7)] == [8, 9, 10]

    def test_sequences_must_increase(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(5, b"x")
            with pytest.raises(ValueError, match="not after"):
                wal.append(5, b"y")
            with pytest.raises(ValueError, match="not after"):
                wal.append(4, b"y")

    def test_last_sequence_survives_reopen(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            fill(wal, 3)
        with WriteAheadLog(tmp_path) as wal:
            assert wal.last_sequence == 3
            wal.append(4, b"next")
            assert [r.sequence for r in wal.replay()] == [1, 2, 3, 4]

    def test_empty_payload_roundtrips(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(1, b"")
            assert list(wal.replay())[0].payload == b""


class TestRotation:
    def test_segments_rotate_and_replay_spans_them(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_bytes=200) as wal:
            fill(wal, 30)
            assert len(wal.segments()) > 1
            assert [r.sequence for r in wal.replay()] == list(
                range(1, 31)
            )

    def test_prune_keeps_unacknowledged_segments(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_bytes=200) as wal:
            fill(wal, 30)
            before = len(wal.segments())
            removed = wal.prune(upto=30)
            assert removed > 0
            assert len(wal.segments()) == before - removed
            # nothing acknowledged: nothing may be removed
            assert wal.prune(upto=0) == 0
            # records after the pruned prefix still replay intact
            survivors = [r.sequence for r in wal.replay()]
            assert survivors == sorted(survivors)
            assert survivors[-1] == 30

    def test_prune_never_removes_append_target(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_bytes=200) as wal:
            fill(wal, 30)
            wal.prune(upto=30)
            wal.append(31, b"after prune")
            assert [r.sequence for r in wal.replay(after=30)] == [31]


def damage_tail(segment, keep_fraction=0.5):
    """Truncate a segment mid-record, like a crash during append."""
    data = segment.read_bytes()
    segment.write_bytes(data[: len(data) - 7])


class TestFailureModes:
    def test_torn_tail_tolerated(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            fill(wal, 5)
        damage_tail(wal.segments()[-1])
        with WriteAheadLog(tmp_path) as wal:
            assert [r.sequence for r in wal.replay()] == [1, 2, 3, 4]

    def test_torn_tail_truncated_on_next_append(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            fill(wal, 5)
        damage_tail(wal.segments()[-1])
        with WriteAheadLog(tmp_path) as wal:
            assert wal.last_sequence == 4
            wal.append(5, b"rewritten")
            records = list(wal.replay())
        assert [r.sequence for r in records] == [1, 2, 3, 4, 5]
        assert records[-1].payload == b"rewritten"

    @pytest.mark.parametrize("flip_at", [4, 20])
    def test_bitflip_mid_segment_raises(self, tmp_path, flip_at):
        """Damage with intact records after it is never a torn tail.

        ``flip_at`` hits the second record's header (4) or payload
        (20) — the CRC covers both.
        """
        with WriteAheadLog(tmp_path) as wal:
            fill(wal, 5)
        segment = wal.segments()[-1]
        data = bytearray(segment.read_bytes())
        record_size = _HEADER.size + 41  # fill() payloads are 41 bytes
        data[record_size + flip_at] ^= 0xFF
        segment.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError, match="corrupt"):
            list(WriteAheadLog(tmp_path).replay())

    def test_damage_in_non_final_segment_raises(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_bytes=200) as wal:
            fill(wal, 30)
        first = wal.segments()[0]
        damage_tail(first)
        with pytest.raises(WalCorruptionError):
            list(WriteAheadLog(tmp_path).replay())

    def test_header_only_tail_tolerated(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            fill(wal, 3)
        segment = wal.segments()[-1]
        with open(segment, "ab") as handle:
            handle.write(_HEADER.pack(99, 1000, 0))  # header, no payload
        with WriteAheadLog(tmp_path) as wal:
            assert [r.sequence for r in wal.replay()] == [1, 2, 3]


class TestPruneEdgeCases:
    def test_prune_at_exact_segment_boundary(self, tmp_path):
        from repro.runtime.wal import _last_sequence_of

        with WriteAheadLog(tmp_path, segment_bytes=200) as wal:
            fill(wal, 30)
            first = wal.segments()[0]
            boundary = _last_sequence_of(first)
            # one short of the boundary: the segment must survive
            assert wal.prune(upto=boundary - 1) == 0
            assert first.exists()
            # exactly the boundary: the segment is now fully covered
            assert wal.prune(upto=boundary) == 1
            assert not first.exists()
            survivors = [r.sequence for r in wal.replay()]
            assert survivors[0] == boundary + 1
            assert survivors[-1] == 30

    def test_prune_past_head_keeps_only_append_target(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_bytes=200) as wal:
            fill(wal, 30)
            before = wal.segments()
            assert wal.prune(upto=1000) == len(before) - 1
            assert wal.segments() == [before[-1]]
            wal.append(31, b"still appendable")
            assert [r.sequence for r in wal.replay()][-1] == 31

    def test_prune_with_torn_tail_in_final_segment(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_bytes=200) as wal:
            fill(wal, 30)
        damage_tail(wal.segments()[-1])
        with WriteAheadLog(tmp_path) as wal:
            head = wal.last_sequence
            assert head < 30  # the torn record fell off the tail
            n_segments = len(wal.segments())
            removed = wal.prune(upto=30)
            # everything but the (torn) final segment goes; the final
            # segment is the append target and is never removed
            assert removed == n_segments - 1
            survivors = [r.sequence for r in wal.replay()]
            assert survivors[-1] == head
            wal.append(head + 1, b"rewrites the torn tail")
            assert [r.sequence for r in wal.replay()][-1] == head + 1
