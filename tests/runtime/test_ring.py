"""Consistent-hash ring: determinism, balance, minimal movement.

The ring is the fleet's routing contract: the coordinator, every
worker and every replayed journal must agree on device -> shard with
no shared state.  That only holds if assignment is a pure function of
(device, membership) — stable across processes and interpreter runs
(blake2b, never ``hash()``), roughly balanced at fleet scale, and
moving only ~1/N of devices when membership changes by one shard.
"""

import subprocess
import sys

import pytest

from repro.runtime.ring import DEFAULT_REPLICAS, HashRing


def fleet(n):
    return [f"vpe{i:05d}" for i in range(n)]


class TestMembership:
    def test_starts_empty(self):
        ring = HashRing()
        assert len(ring) == 0
        assert ring.shards == ()

    def test_constructor_seeds_shards(self):
        ring = HashRing(shards=(2, 0, 1))
        assert ring.shards == (0, 1, 2)
        assert 1 in ring
        assert 7 not in ring

    def test_add_duplicate_raises(self):
        ring = HashRing(shards=(0,))
        with pytest.raises(ValueError, match="already"):
            ring.add(0)

    def test_remove_absent_raises(self):
        ring = HashRing(shards=(0,))
        with pytest.raises(ValueError, match="not on"):
            ring.remove(3)

    def test_assign_on_empty_ring_raises(self):
        with pytest.raises(ValueError, match="empty"):
            HashRing().assign("vpe00000")

    def test_remove_then_add_restores_assignments(self):
        ring = HashRing(shards=(0, 1, 2))
        before = ring.table(fleet(200))
        ring.remove(1)
        ring.add(1)
        assert ring.table(fleet(200)) == before


class TestDeterminism:
    def test_same_membership_same_assignment(self):
        a = HashRing(shards=(0, 1, 2, 3))
        b = HashRing(shards=(3, 2, 1, 0))
        devices = fleet(500)
        assert a.table(devices) == b.table(devices)

    def test_insertion_order_irrelevant(self):
        a = HashRing()
        for shard in (0, 1, 2):
            a.add(shard)
        b = HashRing()
        for shard in (2, 0, 1):
            b.add(shard)
        assert a.table(fleet(300)) == b.table(fleet(300))

    def test_stable_across_processes(self):
        """A fresh interpreter (fresh PYTHONHASHSEED) must agree on
        every assignment — the property ``hash()`` would break."""
        devices = fleet(64)
        local = HashRing(shards=(0, 1, 2, 3))
        script = (
            "from repro.runtime.ring import HashRing\n"
            "ring = HashRing(shards=(0, 1, 2, 3))\n"
            "print(' '.join(str(ring.assign(f'vpe{i:05d}')) "
            "for i in range(64)))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        remote = [int(token) for token in out.split()]
        assert remote == [local.assign(d) for d in devices]


class TestBalance:
    def test_10k_devices_bounded_spread(self):
        """At fleet scale, vnode smoothing keeps the busiest shard
        within a small factor of the idlest (and nobody empty)."""
        ring = HashRing(shards=range(4))
        counts = {shard: 0 for shard in ring.shards}
        for device in fleet(10_000):
            counts[ring.assign(device)] += 1
        assert sum(counts.values()) == 10_000
        assert min(counts.values()) > 0
        assert max(counts.values()) / min(counts.values()) < 2.0

    def test_replicas_smooth_the_spread(self):
        """More vnodes -> tighter balance; 1 vnode/shard is lumpy."""

        def spread(replicas):
            ring = HashRing(shards=range(4), replicas=replicas)
            counts = {shard: 0 for shard in ring.shards}
            for device in fleet(10_000):
                counts[ring.assign(device)] += 1
            return max(counts.values()) / max(min(counts.values()), 1)

        assert spread(DEFAULT_REPLICAS) <= spread(1)


class TestMinimalMovement:
    def test_join_moves_about_one_nth(self):
        devices = fleet(10_000)
        ring = HashRing(shards=(0, 1, 2))
        before = ring.table(devices)
        ring.add(3)
        after = ring.table(devices)
        moved = sum(
            1 for d in devices if before[d] != after[d]
        )
        # Ideal is 1/4 of devices; allow generous slack either way
        # but far below the ~3/4 a mod-N scheme would reshuffle.
        assert 0.10 < moved / len(devices) < 0.45
        # Every moved device lands on the joiner — nothing shuffles
        # between surviving shards.
        assert all(
            after[d] == 3 for d in devices if before[d] != after[d]
        )

    def test_leave_moves_only_the_leavers_devices(self):
        devices = fleet(10_000)
        ring = HashRing(shards=(0, 1, 2, 3))
        before = ring.table(devices)
        ring.remove(2)
        after = ring.table(devices)
        for device in devices:
            if before[device] != 2:
                assert after[device] == before[device]
            else:
                assert after[device] != 2
