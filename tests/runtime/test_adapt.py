"""Tests for repro.runtime.adapt (closed-loop drift adaptation).

The integration tests run a real MonitorService with a controller
attached and drive it with a stream that switches template mix
mid-feed: the drift watcher must trigger, the fine-tune must publish
a release, the swap must land at a tick boundary, and a poisoned
student must be rolled back by the probation guard.  Crash tests
assert the whole loop replays bitwise-identically from the journal.
"""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.core.adaptation import count_distribution_shift
from repro.core.detector import LSTMAnomalyDetector
from repro.logs.templates import TemplateStore
from repro.runtime.adapt import (
    AUTO_ADAPT_ORIGIN,
    AdaptConfig,
    AdaptationController,
    PHASE_COOLDOWN,
    PHASE_PROBATION,
    PHASE_TRIGGERED,
    PHASE_WATCHING,
    poison_detector,
)
from repro.runtime.service import MonitorService, ServiceConfig
from repro.runtime.service import stage_release
from repro.runtime.store import ArtifactStore
from repro.timeutil import TRACE_START
from tests.conftest import make_message

NORMAL_TEXTS = [
    "ALPHA: phase one complete",
    "BRAVO: phase two complete",
    "CHARLIE: phase three complete",
    "DELTA: phase four complete",
]
DRIFT_TEXTS = [
    "ECHO: updated daemon came online",
    "FOXTROT: updated daemon heartbeat",
    "GOLF: updated daemon sync done",
    "HOTEL: updated daemon cache warm",
]

TICK = 8


def stream(texts, n, start=TRACE_START, period=10.0):
    return [
        make_message(
            timestamp=start + i * period,
            host="vpe00",
            text=texts[i % len(texts)],
        )
        for i in range(n)
    ]


def ticks_of(texts, n_ticks, start):
    feed = stream(texts, n_ticks * TICK, start=start)
    return [feed[i:i + TICK] for i in range(0, len(feed), TICK)]


@pytest.fixture(scope="module")
def detector():
    """Fitted on both mixes: the drift trigger is count-based (the
    template-id distribution shifts to disjoint ids, cosine -> 0)
    while scoring stays calm either side of the switch, so the
    probation verdict is decided purely by the fine-tune's health —
    a sane student passes, a poisoned one saturates the alarm rate."""
    normal = stream(NORMAL_TEXTS, 600)
    drifted = stream(DRIFT_TEXTS, 400, start=TRACE_START + 50000.0)
    store = TemplateStore().fit(normal + drifted)
    return LSTMAnomalyDetector(
        store,
        vocabulary_capacity=16,
        window=4,
        hidden=(12, 12),
        id_dim=8,
        epochs=6,
        oversample_rounds=0,
        seed=0,
    ).fit(normal + drifted)


@pytest.fixture(scope="module")
def threshold(detector):
    scores = detector.score(stream(NORMAL_TEXTS, 300)).scores
    return float(np.nanquantile(scores, 0.999)) + 0.25


def fast_config(**overrides):
    base = dict(
        drift_threshold=0.5,
        drift_checks=2,
        check_every_ticks=1,
        reference_ticks=2,
        recent_ticks=2,
        replay_ticks=6,
        probation_ticks=4,
        rollback_ratio=3.0,
        epochs=1,
        cooldown_ticks=2,
        inline=True,
    )
    base.update(overrides)
    return AdaptConfig(**base)


def make_service(tmp_path, detector, threshold, name="svc"):
    config = ServiceConfig(
        data_dir=tmp_path / name, checkpoint_every=3
    )
    store = ArtifactStore(
        config.store_dir, keep_releases=config.keep_releases
    )
    stage_release(store, detector, threshold)
    return config


def open_with_controller(config, adapt_config):
    service = MonitorService.open(config)
    service.controller = AdaptationController(adapt_config)
    service.recover()
    return service


def drift_feed(n_normal=4, n_drift=12):
    """Normal ticks, then drifted ticks (timestamps keep advancing)."""
    head = ticks_of(NORMAL_TEXTS, n_normal, TRACE_START + 7000.0)
    tail = ticks_of(
        DRIFT_TEXTS,
        n_drift,
        TRACE_START + 7000.0 + n_normal * TICK * 10.0,
    )
    return head + tail


class TestConfig:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError, match="drift_threshold"):
            AdaptConfig(drift_threshold=1.5)

    def test_rejects_non_positive_windows(self):
        with pytest.raises(ValueError, match="probation_ticks"):
            AdaptConfig(probation_ticks=0)

    def test_min_probation_floor(self):
        assert AdaptConfig(probation_ticks=4).min_probation_ticks == 2
        assert AdaptConfig(probation_ticks=40).min_probation_ticks == 10


class TestDriftSignal:
    def test_identical_distributions_similar(self):
        with telemetry.use(telemetry.MetricsRegistry()) as registry:
            value = count_distribution_shift([4, 4, 4], [8, 8, 8])
            assert value == pytest.approx(1.0)
            assert registry.snapshot()["counters"][
                "adapt.drift_checks"
            ] == 1

    def test_disjoint_distributions_drift(self):
        with telemetry.use(telemetry.MetricsRegistry()):
            value = count_distribution_shift(
                [4, 4, 0, 0], [0, 0, 4, 4]
            )
        assert value == pytest.approx(0.0)

    def test_poison_reverses_output_weights(self, detector):
        import copy

        victim = copy.deepcopy(detector)
        before = {
            k: v.copy()
            for k, v in victim.model.get_weights().items()
            if k.startswith("output.")
        }
        with telemetry.use(telemetry.MetricsRegistry()):
            poison_detector(victim)
        after = victim.model.get_weights()
        for key, weights in before.items():
            assert np.array_equal(after[key], -weights)


class TestAdaptLoop:
    def test_drift_triggers_swap_and_probation(
        self, tmp_path, detector, threshold
    ):
        config = make_service(tmp_path, detector, threshold)
        feed = drift_feed()
        with telemetry.use(telemetry.MetricsRegistry()) as registry:
            service = open_with_controller(config, fast_config())
            results = [service.process_tick(t) for t in feed]
            controller = service.controller
            assert controller.swaps == 1
            assert controller.rollbacks == 0
            assert service.active_release == 2
            service.close()
        swapped = [
            r.swapped_release
            for r in results
            if r.swapped_release is not None
        ]
        assert swapped == [2]
        counters = registry.snapshot()["counters"]
        assert counters["adapt.trigger.fired"] == 1
        assert counters["adapt.fine_tune.completed"] == 1
        assert counters["adapt.swap.applied"] == 1
        store = ArtifactStore(config.store_dir)
        release = store.manifest(2)
        assert release.metadata["origin"] == AUTO_ADAPT_ORIGIN
        assert release.metadata["teacher"] == 1
        # every message scored exactly once across the swap
        total = sum(len(t) for t in feed)
        scores = np.concatenate([r.scores for r in results])
        assert scores.size == total

    def test_probation_passes_into_cooldown(
        self, tmp_path, detector, threshold
    ):
        config = make_service(tmp_path, detector, threshold)
        # enough post-trigger ticks to serve out probation + cooldown
        feed = drift_feed(n_normal=4, n_drift=16)
        with telemetry.use(telemetry.MetricsRegistry()) as registry:
            service = open_with_controller(config, fast_config())
            for tick in feed:
                service.process_tick(tick)
            phase = service.controller.phase
            service.close()
        assert phase in (PHASE_COOLDOWN, PHASE_WATCHING)
        counters = registry.snapshot()["counters"]
        assert counters["adapt.probation.passed"] == 1
        assert "adapt.rollback.applied" not in counters

    def test_poisoned_swap_rolls_back(
        self, tmp_path, detector, threshold
    ):
        config = make_service(tmp_path, detector, threshold)
        feed = drift_feed(n_normal=4, n_drift=16)
        with telemetry.use(telemetry.MetricsRegistry()) as registry:
            service = open_with_controller(
                config, fast_config(poison=True)
            )
            results = [service.process_tick(t) for t in feed]
            controller = service.controller
            assert controller.swaps == 1
            assert controller.rollbacks == 1
            assert service.active_release == 1
            service.close()
        counters = registry.snapshot()["counters"]
        assert counters["adapt.poisoned_releases"] == 1
        assert counters["adapt.rollback.applied"] == 1
        assert "adapt.probation.passed" not in counters
        store = ArtifactStore(config.store_dir)
        assert store.current_id() == 1
        # exactly-once scoring holds across swap + rollback
        total = sum(len(t) for t in feed)
        scores = np.concatenate([r.scores for r in results])
        assert scores.size == total

    def test_background_worker_publishes_and_swaps(
        self, tmp_path, detector, threshold
    ):
        import time

        config = make_service(tmp_path, detector, threshold)
        feed = drift_feed(n_normal=4, n_drift=8)
        with telemetry.use(telemetry.MetricsRegistry()) as registry:
            service = open_with_controller(
                config, fast_config(inline=False)
            )
            controller = service.controller
            for tick in feed:
                service.process_tick(tick)
            # keep feeding boundaries until the (niced, deliberately
            # low-priority) worker's release lands
            deadline = time.monotonic() + 120.0
            index = 0
            while not controller.swaps:
                assert time.monotonic() < deadline, (
                    "fine-tune worker never delivered a release"
                )
                service.process_tick(
                    ticks_of(
                        DRIFT_TEXTS,
                        1,
                        TRACE_START
                        + 7000.0
                        + (20 + index) * TICK * 10.0,
                    )[0]
                )
                index += 1
            assert controller.swaps == 1
            assert service.active_release == 2
            service.close()
        counters = registry.snapshot()["counters"]
        assert counters["adapt.fine_tune.completed"] == 1
        # the child's telemetry snapshot was merged into the parent
        assert counters["adapt.fine_tune_events"] == 1
        store = ArtifactStore(config.store_dir)
        assert store.manifest(2).metadata["origin"] == AUTO_ADAPT_ORIGIN


class TestCrashReplay:
    def run_to_crash(self, config, adapt_config, feed, crash_tick):
        from tests.runtime.test_service import crash_at

        service = open_with_controller(config, adapt_config)
        live = []
        for index, tick in enumerate(feed):
            if index == crash_tick:
                crash_at(service, 1)
                with pytest.raises(
                    RuntimeError, match="injected crash"
                ):
                    service.process_tick(tick)
                break
            live.append(service.process_tick(tick))
        return live

    @pytest.mark.parametrize("crash_tick", [5, 9, 14])
    def test_crash_replay_parity_with_controller(
        self, tmp_path, detector, threshold, crash_tick
    ):
        """Crashing anywhere around the adapt cycle (pre-trigger,
        during probation, after it) replays to bitwise-identical
        scores and the same controller verdict."""
        feed = drift_feed(n_normal=4, n_drift=14)
        base_cfg = make_service(tmp_path, detector, threshold, "a")
        with telemetry.use(telemetry.MetricsRegistry()):
            base_service = open_with_controller(
                base_cfg, fast_config()
            )
            base = [base_service.process_tick(t) for t in feed]
            base_swaps = base_service.controller.swaps
            base_service.close()

        crash_cfg = make_service(tmp_path, detector, threshold, "b")
        with telemetry.use(telemetry.MetricsRegistry()):
            live = self.run_to_crash(
                crash_cfg, fast_config(), feed, crash_tick
            )
            revived = open_with_controller(crash_cfg, fast_config())
            report = revived.recover()
            overlap = report.ticks_replayed - 1
            if overlap > 0:
                for before, after in zip(
                    live[-overlap:], report.results
                ):
                    assert np.array_equal(
                        before.scores, after.scores, equal_nan=True
                    )
                live = live[:-overlap]
            results = live + list(report.results)
            results += [
                revived.process_tick(t) for t in feed[crash_tick + 1:]
            ]
            crash_swaps = revived.controller.swaps
            revived.close()

        base_scores = np.concatenate([r.scores for r in base])
        scores = np.concatenate([r.scores for r in results])
        assert np.array_equal(base_scores, scores, equal_nan=True)
        base_warnings = [w for r in base for w in r.warnings]
        warnings = [w for r in results for w in r.warnings]
        assert base_warnings == warnings
        assert crash_swaps == base_swaps

    def test_state_dict_json_roundtrip(self, tmp_path):
        controller = AdaptationController(fast_config())
        controller.phase = PHASE_PROBATION
        controller.swaps = 2
        controller._probation_release = 3
        controller._rollback_to = 2
        controller._baseline_rate = 0.05
        controller._reference = np.asarray([1, 2, 3], dtype=np.int64)
        state = json.loads(json.dumps(controller.state_dict()))
        restored = AdaptationController(fast_config())
        restored.load_state_dict(state)
        assert restored.phase == PHASE_PROBATION
        assert restored.swaps == 2
        assert restored._probation_release == 3
        assert restored._rollback_to == 2
        assert restored._baseline_rate == 0.05
        assert np.array_equal(restored._reference, [1, 2, 3])
        assert restored.state_dict() == controller.state_dict()

    def test_tuning_checkpoints_as_triggered(self):
        controller = AdaptationController(fast_config())
        controller.phase = "tuning"
        assert controller.state_dict()["phase"] == PHASE_TRIGGERED

    def test_state_version_mismatch_rejected(self):
        controller = AdaptationController(fast_config())
        state = controller.state_dict()
        state["version"] = 99
        with pytest.raises(ValueError, match="version"):
            controller.load_state_dict(state)
