"""Owner lockfiles: atomic create, stale cleanup, service guard.

The lock's job is to make two *live* processes appending to one WAL
impossible while keeping crashes self-healing: a dead owner's lock is
stale garbage, not a permanent outage.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro import telemetry
from repro.core.detector import LSTMAnomalyDetector
from repro.logs.templates import TemplateStore
from repro.runtime.lock import (
    LOCK_FILENAME,
    LockHeldError,
    OwnerLock,
    pid_alive,
)
from repro.runtime.service import (
    MonitorService,
    ServiceConfig,
    stage_release,
)
from repro.runtime.store import ArtifactStore
from repro.timeutil import TRACE_START
from tests.conftest import make_message


@pytest.fixture
def live_foreign_pid():
    """A pid that is alive for the duration of the test but not ours."""
    proc = subprocess.Popen(
        [sys.executable, "-c", "import time; time.sleep(60)"]
    )
    try:
        yield proc.pid
    finally:
        proc.kill()
        proc.wait()


@pytest.fixture
def dead_pid():
    """A pid guaranteed dead (spawned, exited and reaped)."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


class TestPidAlive:
    def test_own_pid_is_alive(self):
        assert pid_alive(os.getpid())

    def test_dead_pid_is_dead(self, dead_pid):
        assert not pid_alive(dead_pid)

    def test_nonpositive_pids_never_alive(self):
        assert not pid_alive(0)
        assert not pid_alive(-1)


class TestOwnerLock:
    def test_acquire_writes_pid_release_unlinks(self, tmp_path):
        lock = OwnerLock(tmp_path / "dir" / LOCK_FILENAME)
        lock.acquire()
        assert lock.held
        assert int(lock.path.read_text()) == os.getpid()
        lock.release()
        assert not lock.held
        assert not lock.path.exists()

    def test_context_manager(self, tmp_path):
        path = tmp_path / LOCK_FILENAME
        with OwnerLock(path) as lock:
            assert lock.held
            assert path.exists()
        assert not path.exists()

    def test_live_foreign_owner_blocks(self, tmp_path, live_foreign_pid):
        path = tmp_path / LOCK_FILENAME
        path.write_text(f"{live_foreign_pid}\n")
        with pytest.raises(LockHeldError, match="live pid"):
            OwnerLock(path).acquire()
        # the refusal must not destroy the legitimate owner's lock
        assert int(path.read_text()) == live_foreign_pid

    def test_stale_lock_cleaned_and_acquired(self, tmp_path, dead_pid):
        path = tmp_path / LOCK_FILENAME
        path.write_text(f"{dead_pid}\n")
        registry = telemetry.MetricsRegistry()
        with telemetry.use(registry):
            lock = OwnerLock(path)
            lock.acquire()
        assert lock.held
        assert int(path.read_text()) == os.getpid()
        snapshot = registry.snapshot()
        assert snapshot["counters"]["runtime.lock.stale_cleaned"] == 1

    def test_garbage_lockfile_treated_as_stale(self, tmp_path):
        path = tmp_path / LOCK_FILENAME
        path.write_text("not a pid\n")
        lock = OwnerLock(path)
        lock.acquire()
        assert int(path.read_text()) == os.getpid()

    def test_same_pid_reacquires(self, tmp_path):
        """Crash-and-reopen inside one process: the second lock object
        for the same directory takes over instead of deadlocking."""
        path = tmp_path / LOCK_FILENAME
        first = OwnerLock(path)
        first.acquire()
        second = OwnerLock(path)
        second.acquire()  # must not raise
        assert second.held

    def test_acquire_is_idempotent(self, tmp_path):
        lock = OwnerLock(tmp_path / LOCK_FILENAME)
        lock.acquire()
        lock.acquire()
        lock.release()
        lock.release()  # no-op, no error
        assert not lock.path.exists()


@pytest.fixture(scope="module")
def tiny_config_factory():
    """A factory for tiny bootstrapped service dirs (module-scoped
    detector fit; per-test data dirs)."""
    train = [
        make_message(
            timestamp=TRACE_START + i * 10.0,
            host="vpe00",
            text=f"EVENT {('ABC')[i % 3]}: ok",
        )
        for i in range(240)
    ]
    store = TemplateStore().fit(train)
    detector = LSTMAnomalyDetector(
        store,
        vocabulary_capacity=8,
        window=4,
        hidden=(6, 6),
        id_dim=4,
        epochs=2,
        oversample_rounds=0,
        seed=0,
    ).fit(train)
    scores = detector.score(train).scores
    threshold = float(np.nanquantile(scores, 0.999)) + 0.25

    def factory(data_dir):
        config = ServiceConfig(data_dir=data_dir)
        artifact_store = ArtifactStore(
            config.store_dir, keep_releases=config.keep_releases
        )
        stage_release(artifact_store, detector, threshold)
        return config

    return factory


class TestServiceIntegration:
    def test_service_holds_lock_while_open(
        self, tmp_path, tiny_config_factory
    ):
        config = tiny_config_factory(tmp_path / "svc")
        service = MonitorService.open(config)
        assert config.lock_path.exists()
        assert int(config.lock_path.read_text()) == os.getpid()
        service.close()
        assert not config.lock_path.exists()

    def test_foreign_live_lock_blocks_service_open(
        self, tmp_path, tiny_config_factory, live_foreign_pid
    ):
        config = tiny_config_factory(tmp_path / "svc")
        config.lock_path.parent.mkdir(parents=True, exist_ok=True)
        config.lock_path.write_text(f"{live_foreign_pid}\n")
        with pytest.raises(LockHeldError, match="live pid"):
            MonitorService.open(config)

    def test_stale_lock_does_not_block_service_open(
        self, tmp_path, tiny_config_factory, dead_pid
    ):
        config = tiny_config_factory(tmp_path / "svc")
        config.lock_path.parent.mkdir(parents=True, exist_ok=True)
        config.lock_path.write_text(f"{dead_pid}\n")
        service = MonitorService.open(config)
        assert int(config.lock_path.read_text()) == os.getpid()
        service.close()
