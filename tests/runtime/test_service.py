"""Tests for repro.runtime.service (the durable supervisor).

The crash tests use the service's fault hook to die at the exact
points a real process could die — after a WAL append, before a
checkpoint — then restart and assert the recovered run is bitwise
identical to an uninterrupted one: same float64 scores, same
warnings, every message scored exactly once.
"""

import json

import numpy as np
import pytest

from repro.core.detector import LSTMAnomalyDetector
from repro.logs.templates import TemplateStore
from repro.runtime.service import (
    FAULT_AFTER_WAL_APPEND,
    FAULT_BEFORE_CHECKPOINT,
    AdaptiveTicker,
    MonitorService,
    ServiceConfig,
    ServiceError,
    detector_from_release,
    stage_release,
)
from repro.runtime.store import ArtifactStore
from repro.timeutil import TRACE_START
from tests.conftest import make_message

TEXTS = [
    "ALPHA: phase one complete",
    "BRAVO: phase two complete",
    "CHARLIE: phase three complete",
    "DELTA: phase four complete",
]
ANOMALY_TEXT = "ZULU: catastrophic meltdown imminent now"


def cyclic_stream(n, start=TRACE_START, period=10.0, host="vpe00"):
    return [
        make_message(
            timestamp=start + i * period,
            host=host,
            text=TEXTS[i % len(TEXTS)],
        )
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def detector():
    train = cyclic_stream(600)
    store = TemplateStore().fit(train)
    return LSTMAnomalyDetector(
        store,
        vocabulary_capacity=16,
        window=4,
        hidden=(12, 12),
        id_dim=8,
        epochs=6,
        oversample_rounds=0,
        seed=0,
    ).fit(train)


@pytest.fixture(scope="module")
def threshold(detector):
    scores = detector.score(cyclic_stream(300)).scores
    return float(np.nanquantile(scores, 0.999)) + 0.25


@pytest.fixture(scope="module")
def ticks(detector):
    """16 eight-message ticks over two devices, with two anomaly
    bursts close enough to cluster into warnings."""
    feed = cyclic_stream(60, start=TRACE_START + 7000.0)
    feed += cyclic_stream(
        60, start=TRACE_START + 7003.0, host="vpe01"
    )
    feed += [
        make_message(
            timestamp=TRACE_START + 7000.0 + t,
            host="vpe00",
            text=ANOMALY_TEXT,
        )
        for t in (151.0, 152.0, 403.0, 404.0)
    ]
    feed.sort(key=lambda m: m.timestamp)
    feed = feed[:128]
    return [feed[i:i + 8] for i in range(0, len(feed), 8)]


def make_service(tmp_path, detector, threshold, name="svc", **kwargs):
    config = ServiceConfig(
        data_dir=tmp_path / name,
        checkpoint_every=kwargs.pop("checkpoint_every", 3),
        **kwargs,
    )
    store = ArtifactStore(
        config.store_dir, keep_releases=config.keep_releases
    )
    stage_release(store, detector, threshold)
    return config


def crash_at(service, n_appends):
    """Install a hook that dies on the Nth WAL append from now."""
    state = {"appends": 0}

    def hook(point, sequence):
        if point == FAULT_AFTER_WAL_APPEND:
            state["appends"] += 1
            if state["appends"] >= n_appends:
                raise RuntimeError("injected crash")

    service.fault_hook = hook


def flatten(results):
    scores = np.concatenate([r.scores for r in results])
    warnings = [w for r in results for w in r.warnings]
    return scores, warnings


def run_with_crash_and_recover(config, ticks, crash_tick):
    """Crash at tick index ``crash_tick``; restart, replay, finish.

    Returns the merged tick results with the replayed ticks replacing
    their (bitwise-asserted-identical) pre-crash duplicates.
    """
    service = MonitorService.open(config)
    live = []
    for index, tick in enumerate(ticks):
        if index == crash_tick:
            crash_at(service, 1)
            with pytest.raises(RuntimeError, match="injected crash"):
                service.process_tick(tick)
            break
        live.append(service.process_tick(tick))
    # no close(): the process died. Reopen from disk.
    revived = MonitorService.open(config)
    report = revived.recover()
    overlap = report.ticks_replayed - 1  # crash tick was never scored
    if overlap:
        for before, after in zip(live[-overlap:], report.results):
            assert np.array_equal(
                before.scores, after.scores, equal_nan=True
            )
            assert before.warnings == after.warnings
        live = live[:-overlap]
    results = live + list(report.results)
    for tick in ticks[crash_tick + 1:]:
        results.append(revived.process_tick(tick))
    revived.close()
    return results, report


class TestOpen:
    def test_open_empty_store_fails(self, tmp_path):
        config = ServiceConfig(data_dir=tmp_path / "empty")
        with pytest.raises(ServiceError, match="no release"):
            MonitorService.open(config)

    def test_release_roundtrip_scores_identically(
        self, tmp_path, detector, threshold
    ):
        config = make_service(tmp_path, detector, threshold)
        store = ArtifactStore(config.store_dir)
        rebuilt, restored_threshold = detector_from_release(store, 1)
        assert restored_threshold == threshold
        probe = cyclic_stream(64, start=TRACE_START + 9000.0)
        assert np.array_equal(
            detector.score(probe).scores,
            rebuilt.score(probe).scores,
            equal_nan=True,
        )

    def test_closed_service_rejects_ticks(
        self, tmp_path, detector, threshold, ticks
    ):
        config = make_service(tmp_path, detector, threshold)
        service = MonitorService.open(config)
        service.process_tick(ticks[0])
        service.close()
        with pytest.raises(ServiceError, match="closed"):
            service.process_tick(ticks[1])


class TestCrashRecovery:
    def test_uninterrupted_run_emits_warnings(
        self, tmp_path, detector, threshold, ticks
    ):
        config = make_service(tmp_path, detector, threshold)
        with MonitorService.open(config) as service:
            results = [service.process_tick(t) for t in ticks]
        _, warnings = flatten(results)
        assert warnings, "fixture must produce warnings to compare"

    @pytest.mark.parametrize("crash_tick", [1, 7, 15])
    def test_crash_replay_parity(
        self, tmp_path, detector, threshold, ticks, crash_tick
    ):
        base_config = make_service(tmp_path, detector, threshold, "a")
        with MonitorService.open(base_config) as service:
            base = [service.process_tick(t) for t in ticks]
        base_scores, base_warnings = flatten(base)

        crash_config = make_service(tmp_path, detector, threshold, "b")
        results, report = run_with_crash_and_recover(
            crash_config, ticks, crash_tick
        )
        scores, warnings = flatten(results)
        assert np.array_equal(base_scores, scores, equal_nan=True)
        assert base_warnings == warnings
        assert scores.size == sum(len(t) for t in ticks)
        assert report.records_replayed >= 1

    def test_crash_before_checkpoint_keeps_previous(
        self, tmp_path, detector, threshold, ticks
    ):
        config = make_service(tmp_path, detector, threshold)
        service = MonitorService.open(config)

        def hook(point, sequence):
            if point == FAULT_BEFORE_CHECKPOINT and sequence > 4:
                raise RuntimeError("died before checkpoint")

        for tick in ticks[:3]:  # cadence 3: checkpoint after tick 3
            service.process_tick(tick)
        service.fault_hook = hook
        with pytest.raises(RuntimeError, match="before checkpoint"):
            for tick in ticks[3:6]:
                service.process_tick(tick)
        revived = MonitorService.open(config)
        report = revived.recover()
        # the earlier checkpoint survived; only newer ticks replay
        assert report.checkpoint_cursor > 0
        assert report.ticks_replayed >= 1
        revived.process_tick(ticks[6])
        revived.close()

    def test_wal_pruned_behind_checkpoints(
        self, tmp_path, detector, threshold, ticks
    ):
        config = make_service(
            tmp_path, detector, threshold, segment_bytes=4096
        )
        with MonitorService.open(config) as service:
            for tick in ticks:
                service.process_tick(tick)
            assert len(service.wal.segments()) <= 2

    def test_recover_on_fresh_service_is_noop(
        self, tmp_path, detector, threshold
    ):
        config = make_service(tmp_path, detector, threshold)
        with MonitorService.open(config) as service:
            report = service.recover()
        assert report.records_replayed == 0
        assert report.checkpoint_cursor == 0


class TestHotSwap:
    def stage_variant(self, config, threshold):
        """Publish release 2 (same shape, scaled weights) as a swap
        candidate, leaving release 1 current for open()."""
        store = ArtifactStore(config.store_dir)
        variant, _ = detector_from_release(store, 1)
        variant.model.set_weights(
            {
                name: w * 1.05
                for name, w in variant.model.get_weights().items()
            }
        )
        release = stage_release(store, variant, threshold + 0.1)
        store.rollback()
        return store, release

    def test_swap_applies_at_tick_boundary(
        self, tmp_path, detector, threshold, ticks
    ):
        config = make_service(tmp_path, detector, threshold)
        _, release = self.stage_variant(config, threshold)
        with MonitorService.open(config) as service:
            before = [service.process_tick(t) for t in ticks[:4]]
            service.request_swap(release.release_id)
            after = [service.process_tick(t) for t in ticks[4:]]
        assert all(r.swapped_release is None for r in before)
        assert after[0].swapped_release == release.release_id
        assert all(r.swapped_release is None for r in after[1:])
        assert service.active_release == release.release_id
        # exactly once: every fed message has exactly one score
        total = sum(len(t) for t in ticks)
        scores, _ = flatten(before + after)
        assert scores.size == total

    def test_swap_changes_scores(
        self, tmp_path, detector, threshold, ticks
    ):
        plain = make_service(tmp_path, detector, threshold, "plain")
        with MonitorService.open(plain) as service:
            base = [service.process_tick(t) for t in ticks]
        swapped = make_service(tmp_path, detector, threshold, "swap")
        _, release = self.stage_variant(swapped, threshold)
        with MonitorService.open(swapped) as service:
            head = [service.process_tick(t) for t in ticks[:4]]
            service.request_swap(release.release_id)
            tail = [service.process_tick(t) for t in ticks[4:]]
        base_scores, _ = flatten(base)
        swap_scores, _ = flatten(head + tail)
        head_len = sum(len(t) for t in ticks[:4])
        assert np.array_equal(
            base_scores[:head_len],
            swap_scores[:head_len],
            equal_nan=True,
        )
        finite = np.isfinite(base_scores[head_len:]) & np.isfinite(
            swap_scores[head_len:]
        )
        assert not np.array_equal(
            base_scores[head_len:][finite],
            swap_scores[head_len:][finite],
        )

    def test_crash_between_swap_journal_and_apply(
        self, tmp_path, detector, threshold, ticks
    ):
        """A journaled-but-unapplied swap is re-applied on recovery,
        at the same boundary, with bitwise-identical scores."""
        base_cfg = make_service(tmp_path, detector, threshold, "a")
        _, release_a = self.stage_variant(base_cfg, threshold)
        with MonitorService.open(base_cfg) as service:
            base = [service.process_tick(t) for t in ticks[:4]]
            service.request_swap(release_a.release_id)
            base += [service.process_tick(t) for t in ticks[4:]]
        base_scores, base_warnings = flatten(base)

        crash_cfg = make_service(tmp_path, detector, threshold, "b")
        _, release_b = self.stage_variant(crash_cfg, threshold)
        service = MonitorService.open(crash_cfg)
        live = [service.process_tick(t) for t in ticks[:4]]
        service.request_swap(release_b.release_id)
        crash_at(service, 1)  # dies appending the swap record
        with pytest.raises(RuntimeError, match="injected crash"):
            service.process_tick(ticks[4])
        revived = MonitorService.open(crash_cfg)
        report = revived.recover()
        assert report.swaps_replayed == 1
        assert revived.active_release == release_b.release_id
        overlap = report.ticks_replayed
        if overlap:
            for before, after in zip(
                live[-overlap:], report.results
            ):
                assert np.array_equal(
                    before.scores, after.scores, equal_nan=True
                )
            live = live[:-overlap]
        results = live + list(report.results)
        results += [revived.process_tick(t) for t in ticks[4:]]
        revived.close()
        scores, warnings = flatten(results)
        assert np.array_equal(base_scores, scores, equal_nan=True)
        assert base_warnings == warnings

    def test_incompatible_swap_rejected(
        self, tmp_path, detector, threshold
    ):
        config = make_service(tmp_path, detector, threshold)
        store = ArtifactStore(config.store_dir)
        bad_config = json.loads(store.read(1, "config.json"))
        bad_config["window"] = bad_config["window"] + 1
        store.publish(
            {
                "weights.npz": store.read(1, "weights.npz"),
                "templates.json": store.read(1, "templates.json"),
                "config.json": json.dumps(bad_config).encode(),
            }
        )
        store.rollback()  # open() must come up on release 1
        with MonitorService.open(config) as service:
            with pytest.raises(ServiceError, match="window"):
                service.request_swap(2)

    def test_rollback_at_boundary_scores_exactly_once(
        self, tmp_path, detector, threshold, ticks
    ):
        """service.rollback() — the one code path behind both
        ``serve --rollback`` and the probation guard — journals the
        swap at a tick boundary: every message is scored exactly
        once, and a crash right after the rollback replays to
        bitwise-identical scores instead of re-scoring ticks under
        the abandoned model."""

        def run(name, crash_tick=None):
            config = make_service(tmp_path, detector, threshold, name)
            service = MonitorService.open(config)
            results = [service.process_tick(t) for t in ticks[:2]]
            # publish mid-run, like the adaptation loop does: the
            # store's CURRENT moves to 2 so rollback() can return it
            # to 1.
            variant, _ = detector_from_release(service.store, 1)
            variant.model.set_weights(
                {
                    name_: w * 1.05
                    for name_, w in variant.model.get_weights().items()
                }
            )
            release = stage_release(
                service.store, variant, threshold + 0.1
            )
            service.request_swap(release.release_id)
            results += [service.process_tick(t) for t in ticks[2:6]]
            assert service.active_release == release.release_id
            rolled_to = service.rollback()
            assert rolled_to == 1
            assert service.active_release == 1
            remaining = ticks[6:]
            if crash_tick is None:
                results += [
                    service.process_tick(t) for t in remaining
                ]
                service.close()
                return results
            for index, tick in enumerate(remaining):
                if index == crash_tick:
                    crash_at(service, 1)
                    with pytest.raises(
                        RuntimeError, match="injected crash"
                    ):
                        service.process_tick(tick)
                    break
                results.append(service.process_tick(tick))
            revived = MonitorService.open(config)
            report = revived.recover()
            assert revived.active_release == 1
            overlap = report.ticks_replayed - 1
            if overlap > 0:
                for before, after in zip(
                    results[-overlap:], report.results
                ):
                    assert np.array_equal(
                        before.scores, after.scores, equal_nan=True
                    )
                results = results[:-overlap]
            results += list(report.results)
            results += [
                revived.process_tick(t)
                for t in remaining[crash_tick + 1:]
            ]
            revived.close()
            return results

        base = run("base")
        crashed = run("crashed", crash_tick=1)
        total = sum(len(t) for t in ticks)
        base_scores, base_warnings = flatten(base)
        crash_scores, crash_warnings = flatten(crashed)
        assert base_scores.size == total
        assert crash_scores.size == total
        assert np.array_equal(
            base_scores, crash_scores, equal_nan=True
        )
        assert base_warnings == crash_warnings

    def test_adapt_publishes_and_stages(
        self, tmp_path, detector, threshold, ticks
    ):
        config = make_service(tmp_path, detector, threshold)
        with MonitorService.open(config) as service:
            for tick in ticks[:2]:
                service.process_tick(tick)
            fresh = cyclic_stream(80, start=TRACE_START + 20000.0)
            release = service.adapt(fresh, epochs=1)
            assert release.release_id == 2
            assert service.pending_release == 2
            result = service.process_tick(ticks[2])
            assert result.swapped_release == 2
            assert service.active_release == 2
        store = ArtifactStore(config.store_dir)
        assert store.current_id() == 2


class TestJournalCompat:
    """The binary tick codec must coexist with legacy JSON journals."""

    def test_mixed_binary_and_json_journal_replays(
        self, tmp_path, detector, threshold, ticks
    ):
        from repro.runtime.service import tick_payload

        # checkpoint_every high + no close(): a clean close writes a
        # final checkpoint, which would advance the cursor past the
        # binary records.  Dying uncleanly keeps all four tick records
        # in replay range.
        config = make_service(
            tmp_path, detector, threshold, checkpoint_every=100
        )
        service = MonitorService.open(config)
        service.recover()
        for tick in ticks[:2]:  # binary records via the live path
            service.process_tick(tick)
        # Hand-write two more ticks the way earlier releases journaled
        # them: JSON row payloads.
        service.wal.append(4, tick_payload(ticks[2]))
        service.wal.append(5, tick_payload(ticks[3]))
        service.wal.close()  # the process "dies" without a checkpoint

        revived = MonitorService.open(config)
        report = revived.recover()
        revived.close()
        assert report.ticks_replayed == 4
        assert report.messages_replayed == sum(
            len(t) for t in ticks[:4]
        )

        reference = make_service(
            tmp_path, detector, threshold, name="reference"
        )
        with MonitorService.open(reference) as ref:
            ref.recover()
            expected = [ref.process_tick(t) for t in ticks[:4]]
        for before, after in zip(expected, report.results):
            assert np.array_equal(
                before.scores, after.scores, equal_nan=True
            )
            assert before.warnings == after.warnings

    def test_unrecognized_journal_record_refused(
        self, tmp_path, detector, threshold, ticks
    ):
        config = make_service(tmp_path, detector, threshold)
        service = MonitorService.open(config)
        service.recover()
        service.process_tick(ticks[0])
        service.wal.append(3, b"\x99mystery bytes")
        service.close()
        revived = MonitorService.open(config)
        with pytest.raises(
            ServiceError, match="unrecognized journal record"
        ):
            revived.recover()


class TestDrain:
    def _feed(self, ticks, n):
        return [message for tick in ticks[:n] for message in tick]

    def test_fixed_drain_resumes_at_tick_boundary(
        self, tmp_path, detector, threshold, ticks
    ):
        feed = self._feed(ticks, 8)
        config = make_service(tmp_path, detector, threshold)
        service = MonitorService.open(config)
        service.recover()
        first = list(service.drain(feed, tick_size=8, max_ticks=3))
        assert len(first) == 3
        assert service.n_ticks == 3
        rest = list(service.drain(feed, tick_size=8))
        service.close()
        assert len(first) + len(rest) == len(feed) // 8
        scores = np.concatenate(
            [r.scores for r in first + rest]
        )
        assert scores.shape[0] == len(feed)

    def test_adaptive_drain_resumes_from_message_cursor(
        self, tmp_path, detector, threshold, ticks
    ):
        feed = self._feed(ticks, 8)
        config = make_service(tmp_path, detector, threshold)
        service = MonitorService.open(config)
        service.recover()
        ticker = AdaptiveTicker(
            initial=8, min_size=4, max_size=32, hysteresis=1
        )
        first = list(
            service.drain(feed, ticker=ticker, max_ticks=2)
        )
        consumed = sum(len(r.scores) for r in first)
        assert service.n_messages == consumed
        rest = list(service.drain(feed, ticker=ticker))
        service.close()
        total = sum(len(r.scores) for r in first + rest)
        assert total == len(feed)

    def test_adaptive_drain_matches_fixed_scores(
        self, tmp_path, detector, threshold, ticks
    ):
        feed = self._feed(ticks, 8)
        fixed_config = make_service(
            tmp_path, detector, threshold, name="fixed"
        )
        with MonitorService.open(fixed_config) as fixed:
            fixed.recover()
            fixed_scores = np.concatenate(
                [r.scores for r in fixed.drain(feed, tick_size=8)]
            )
        adaptive_config = make_service(
            tmp_path, detector, threshold, name="adaptive"
        )
        with MonitorService.open(adaptive_config) as adaptive:
            adaptive.recover()
            adaptive_scores = np.concatenate(
                [
                    r.scores
                    for r in adaptive.drain(
                        feed,
                        ticker=AdaptiveTicker(
                            initial=4,
                            min_size=4,
                            max_size=16,
                            hysteresis=1,
                        ),
                    )
                ]
            )
        assert np.array_equal(
            fixed_scores, adaptive_scores, equal_nan=True
        )
