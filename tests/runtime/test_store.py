"""Tests for repro.runtime.store (versioned artifact releases)."""

import pytest

from repro.runtime.store import ArtifactStore, StoreError


def publish(store, tag, extra=None):
    artifacts = {"weights.npz": tag, "config.json": b'{"t": 1}'}
    if extra:
        artifacts.update(extra)
    return store.publish(artifacts, metadata={"tag": tag.decode()})


class TestPublishRead:
    def test_publish_and_read_back(self, tmp_path):
        store = ArtifactStore(tmp_path)
        release = publish(store, b"v1")
        assert release.release_id == 1
        assert store.current_id() == 1
        assert store.read(1, "weights.npz") == b"v1"
        assert store.current().metadata == {"tag": "v1"}

    def test_ids_increase(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert [publish(store, t).release_id for t in (b"a", b"b")] == [
            1,
            2,
        ]
        assert store.current_id() == 2

    def test_empty_store(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.current() is None
        with pytest.raises(StoreError, match="no release"):
            store.manifest(1)

    def test_unknown_artifact(self, tmp_path):
        store = ArtifactStore(tmp_path)
        publish(store, b"v1")
        with pytest.raises(StoreError, match="no artifact"):
            store.read(1, "missing.bin")

    def test_no_empty_release(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactStore(tmp_path).publish({})


class TestContentAddressing:
    def test_identical_artifacts_share_blobs(self, tmp_path):
        store = ArtifactStore(tmp_path)
        r1 = publish(store, b"same")
        r2 = publish(store, b"same")
        assert r1.artifacts["weights.npz"] == r2.artifacts["weights.npz"]

    def test_corrupt_object_detected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        release = publish(store, b"v1")
        blob = store.object_path(release.artifacts["weights.npz"])
        blob.write_bytes(b"tampered")
        with pytest.raises(StoreError, match="content verification"):
            store.read(1, "weights.npz")


class TestRetention:
    def test_old_releases_pruned_and_blobs_collected(self, tmp_path):
        store = ArtifactStore(tmp_path, keep_releases=2)
        doomed = publish(store, b"old-only-blob")
        for tag in (b"v2", b"v3"):
            publish(store, tag)
        assert store.release_ids() == [2, 3]
        with pytest.raises(StoreError, match="missing object"):
            store.object_path(doomed.artifacts["weights.npz"])
        # the shared config blob is still referenced and must survive
        assert store.read(3, "config.json") == b'{"t": 1}'

    def test_retention_depth_one(self, tmp_path):
        store = ArtifactStore(tmp_path, keep_releases=1)
        for tag in (b"a", b"b", b"c"):
            publish(store, tag)
        assert store.release_ids() == [3]
        assert store.current_id() == 3

    def test_rollback_flips_pointer(self, tmp_path):
        store = ArtifactStore(tmp_path, keep_releases=3)
        for tag in (b"a", b"b"):
            publish(store, tag)
        assert store.rollback().release_id == 1
        assert store.current_id() == 1
        assert store.read(1, "weights.npz") == b"a"

    def test_rollback_without_predecessor(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(StoreError, match="nothing published"):
            store.rollback()
        publish(store, b"only")
        with pytest.raises(StoreError, match="no retained"):
            store.rollback()

    def test_publish_after_rollback_supersedes(self, tmp_path):
        store = ArtifactStore(tmp_path, keep_releases=3)
        for tag in (b"a", b"b"):
            publish(store, tag)
        store.rollback()
        release = publish(store, b"c")
        assert release.release_id == 3
        assert store.current_id() == 3
