"""Fleet coordinator tests: routing, drain, crash drill, membership.

Everything here runs the real worker processes (fork/spawn via
``multiprocessing``) against tiny fitted detectors, so the suite
exercises the actual pipe protocol — binary tick frames, JSON acks,
hello cursors, graceful close — not mocks of it.
"""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.core.detector import LSTMAnomalyDetector
from repro.logs.templates import TemplateStore
from repro.runtime.fleet import (
    FleetConfig,
    FleetCoordinator,
    FleetError,
    bootstrap_fleet,
    fleet_has_state,
    load_ring,
)
from repro.runtime.ring import HashRing
from repro.timeutil import TRACE_START
from tests.conftest import make_message

TEXTS = [
    "ALPHA: phase one complete",
    "BRAVO: phase two complete",
    "CHARLIE: phase three complete",
]


def stream(n, hosts=("vpe00",), start=TRACE_START, period=10.0):
    """``n`` messages round-robined over ``hosts``, time-ordered."""
    return [
        make_message(
            timestamp=start + i * period,
            host=hosts[i % len(hosts)],
            text=TEXTS[i % len(TEXTS)],
        )
        for i in range(n)
    ]


HOSTS = tuple(f"vpe{i:02d}" for i in range(8))


@pytest.fixture(scope="module")
def detector():
    train = stream(400)
    store = TemplateStore().fit(train)
    return LSTMAnomalyDetector(
        store,
        vocabulary_capacity=8,
        window=4,
        hidden=(6, 6),
        id_dim=4,
        epochs=2,
        oversample_rounds=0,
        seed=0,
    ).fit(train)


@pytest.fixture(scope="module")
def feed():
    return stream(640, hosts=HOSTS, start=TRACE_START + 8000.0)


def make_fleet(tmp_path, detector, name="fleet", **kwargs):
    config = FleetConfig(
        data_dir=tmp_path / name,
        shards=kwargs.pop("shards", 3),
        checkpoint_every=kwargs.pop("checkpoint_every", 4),
        scores_out=kwargs.pop(
            "scores_out", str(tmp_path / f"{name}-scores.csv")
        ),
        **kwargs,
    )
    bootstrap_fleet(config, detector, float("inf"))
    return config


def read_rows(config):
    import pathlib

    base = pathlib.Path(config.scores_out)
    rows = []
    for shard_path in sorted(base.parent.glob(base.name + ".shard*")):
        rows.extend(shard_path.read_text().splitlines())
    return rows


class TestFleetConfig:
    def test_rejects_zero_shards(self, tmp_path):
        with pytest.raises(ValueError, match="shards"):
            FleetConfig(data_dir=tmp_path, shards=0)

    def test_rejects_zero_inflight(self, tmp_path):
        with pytest.raises(ValueError, match="max_inflight"):
            FleetConfig(data_dir=tmp_path, max_inflight=0)

    def test_kill_knobs_must_pair(self, tmp_path):
        with pytest.raises(ValueError, match="together"):
            FleetConfig(data_dir=tmp_path, kill_shard=1)
        with pytest.raises(ValueError, match="together"):
            FleetConfig(data_dir=tmp_path, kill_after_ticks=3)

    def test_shard_paths(self, tmp_path):
        config = FleetConfig(
            data_dir=tmp_path, scores_out=str(tmp_path / "s.csv")
        )
        assert config.shard_dir(7).name == "shard-07"
        assert config.shard_scores_path(7).endswith("s.csv.shard07")
        assert config.shard_warnings_path(7) is None


class TestRingJournal:
    def test_fresh_dir_journals_init(self, tmp_path):
        config = FleetConfig(data_dir=tmp_path / "f", shards=3)
        ring = load_ring(config)
        assert ring.shards == (0, 1, 2)
        events = [
            json.loads(line)
            for line in config.ring_path.read_text().splitlines()
        ]
        assert events == [
            {"event": "init", "shards": [0, 1, 2], "replicas": 64}
        ]

    def test_reload_ignores_config_shards(self, tmp_path):
        first = FleetConfig(data_dir=tmp_path / "f", shards=3)
        load_ring(first)
        # journal wins: a different shards= on reload changes nothing
        again = FleetConfig(data_dir=tmp_path / "f", shards=5)
        assert load_ring(again).shards == (0, 1, 2)

    def test_replay_matches_live_assignments(self, tmp_path, detector):
        config = make_fleet(tmp_path, detector, shards=3)
        devices = [f"vpe{i:03d}" for i in range(100)]
        with telemetry.use(telemetry.MetricsRegistry()):
            with FleetCoordinator.open(config) as coordinator:
                live = {d: coordinator.assign(d) for d in devices}
        replayed = load_ring(config)
        assert {d: replayed.assign(d) for d in devices} == live

    @pytest.mark.parametrize(
        "lines, match",
        [
            (
                ['{"event":"init","shards":[0],"replicas":4}'] * 2,
                "duplicate ring init",
            ),
            (['{"event":"join","shard":1}'], "join before init"),
            (['{"event":"leave","shard":1}'], "leave before init"),
            (['{"event":"what"}'], "unknown ring event"),
            ([], "no ring init"),
        ],
    )
    def test_corrupt_journal_refused(self, tmp_path, lines, match):
        config = FleetConfig(data_dir=tmp_path / "f")
        config.ring_path.parent.mkdir(parents=True, exist_ok=True)
        config.ring_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(FleetError, match=match):
            load_ring(config)


class TestOpenClose:
    def test_open_shard_mismatch_refused(self, tmp_path, detector):
        config = make_fleet(tmp_path, detector, shards=2)
        load_ring(config)
        wrong = FleetConfig(
            data_dir=config.data_dir,
            shards=4,
            scores_out=config.scores_out,
        )
        with pytest.raises(FleetError, match="records 2 shards"):
            FleetCoordinator.open(wrong)

    def test_open_without_bootstrap_aborts_cleanly(self, tmp_path):
        config = FleetConfig(data_dir=tmp_path / "cold", shards=2)
        with telemetry.use(telemetry.MetricsRegistry()):
            with pytest.raises(FleetError, match="failed to start"):
                FleetCoordinator.open(config)
        # the failed open must not leave its lock behind
        assert not config.lock_path.exists()

    def test_drain_after_close_refused(self, tmp_path, detector, feed):
        config = make_fleet(tmp_path, detector)
        with telemetry.use(telemetry.MetricsRegistry()):
            coordinator = FleetCoordinator.open(config)
            coordinator.close()
            with pytest.raises(FleetError, match="closed"):
                coordinator.drain(feed)


class TestDrain:
    def test_partition_preserves_order_and_coverage(
        self, tmp_path, detector, feed
    ):
        config = make_fleet(tmp_path, detector)
        with telemetry.use(telemetry.MetricsRegistry()):
            with FleetCoordinator.open(config) as coordinator:
                parts = coordinator.partition(feed)
        assert sum(len(p) for p in parts.values()) == len(feed)
        ring = load_ring(config)
        for shard, part in parts.items():
            assert all(ring.assign(m.host) == shard for m in part)
            times = [m.timestamp for m in part]
            assert times == sorted(times)

    def test_drain_scores_every_message_once(
        self, tmp_path, detector, feed
    ):
        config = make_fleet(tmp_path, detector)
        registry = telemetry.MetricsRegistry()
        with telemetry.use(registry):
            with FleetCoordinator.open(config) as coordinator:
                report = coordinator.drain(feed, tick_size=32)
        assert report.dead_shards == ()
        assert report.messages == len(feed)
        assert report.msgs_per_s > 0
        assert sum(
            s.messages for s in report.per_shard.values()
        ) == len(feed)
        assert all(
            s.backlog == 0 for s in report.per_shard.values()
        )
        rows = read_rows(config)
        assert len(rows) == len(feed)
        snapshot = registry.snapshot()
        # worker registries merged on close: fleet-total tick count
        assert snapshot["counters"]["fleet.messages_routed"] == len(feed)
        assert snapshot["counters"]["runtime.ticks"] == report.ticks
        assert snapshot["gauges"]["fleet.aggregate_msgs_per_s"] > 0

    def test_adaptive_drain_scores_everything(
        self, tmp_path, detector, feed
    ):
        config = make_fleet(tmp_path, detector, name="adaptive")
        with telemetry.use(telemetry.MetricsRegistry()):
            with FleetCoordinator.open(config) as coordinator:
                report = coordinator.drain(
                    feed, tick_size=64, adaptive=True
                )
        assert report.messages == len(feed)
        assert len(read_rows(config)) == len(feed)

    def test_reopened_fleet_resumes_at_cursor(
        self, tmp_path, detector, feed
    ):
        config = make_fleet(tmp_path, detector, name="resume")
        with telemetry.use(telemetry.MetricsRegistry()):
            with FleetCoordinator.open(config) as coordinator:
                first = coordinator.drain(
                    feed, tick_size=16, max_ticks=6
                )
            assert 0 < first.messages < len(feed)
            assert fleet_has_state(config)
            with FleetCoordinator.open(config) as coordinator:
                second = coordinator.drain(feed, tick_size=16)
        assert first.messages + second.messages == len(feed)
        # every message scored exactly once across both sessions
        assert len(read_rows(config)) == len(feed)


class TestKillDrill:
    def test_crash_restart_replay_parity(
        self, tmp_path, detector, feed
    ):
        # Kill the busiest shard so the drill always hits a loaded
        # worker (the ring leaves small fleets lumpy).
        ring = HashRing(shards=(0, 1, 2))
        loads = {shard: 0 for shard in ring.shards}
        for host in HOSTS:
            loads[ring.assign(host)] += 1
        victim = max(loads, key=loads.get)
        config = make_fleet(
            tmp_path,
            detector,
            name="drill",
            checkpoint_every=3,
            kill_shard=victim,
            kill_after_ticks=2,
        )
        with telemetry.use(telemetry.MetricsRegistry()) as registry:
            with FleetCoordinator.open(config) as coordinator:
                parts = coordinator.partition(feed)
                assert len(parts[victim]) > 0, (
                    "drill victim must own devices"
                )
                crashed = coordinator.drain(feed, tick_size=16)
                assert crashed.dead_shards == (victim,)
                assert crashed.per_shard[victim].dead
                # survivors finished their whole backlog regardless
                for shard, share in crashed.per_shard.items():
                    if shard != victim:
                        assert share.backlog == 0
                        assert share.messages == len(parts[shard])
                replayed = coordinator.restart_shard(victim)
                assert replayed >= 1
                assert coordinator.dead_shards == ()
                resumed = coordinator.drain(feed, tick_size=16)
                assert resumed.dead_shards == ()
            snapshot = registry.snapshot()
        assert snapshot["counters"]["fleet.shard_deaths"] == 1
        # The crashed tick was journaled but never acknowledged: its
        # messages reach the CSV via replay, not via either drain.
        assert crashed.messages + resumed.messages <= len(feed)
        # CSV rows: the replayed tick re-lands bitwise-identically,
        # so unique rows == messages even though raw rows may exceed.
        rows = read_rows(config)
        assert len(set(rows)) == len(feed)

    def test_restart_live_shard_refused(self, tmp_path, detector):
        config = make_fleet(tmp_path, detector, name="live")
        with telemetry.use(telemetry.MetricsRegistry()):
            with FleetCoordinator.open(config) as coordinator:
                with pytest.raises(FleetError, match="alive"):
                    coordinator.restart_shard(0)

    def test_restart_unknown_shard_refused(self, tmp_path, detector):
        config = make_fleet(tmp_path, detector, name="unknown")
        with telemetry.use(telemetry.MetricsRegistry()):
            with FleetCoordinator.open(config) as coordinator:
                with pytest.raises(FleetError, match="not in"):
                    coordinator.restart_shard(9)


class TestMembership:
    def test_add_shard_journals_and_routes(
        self, tmp_path, detector, feed
    ):
        config = make_fleet(tmp_path, detector, name="grow", shards=2)
        # bootstrap the joiner's store before it can serve
        from repro.runtime.service import stage_release
        from repro.runtime.store import ArtifactStore

        store = ArtifactStore(
            config.shard_config(2).store_dir,
            keep_releases=config.keep_releases,
        )
        stage_release(store, detector, float("inf"))
        with telemetry.use(telemetry.MetricsRegistry()):
            with FleetCoordinator.open(config) as coordinator:
                before = {
                    m.host: coordinator.assign(m.host) for m in feed
                }
                coordinator.add_shard(2)
                assert coordinator.ring.shards == (0, 1, 2)
                after = {
                    host: coordinator.ring.assign(host)
                    for host in before
                }
                # movement only onto the joiner
                assert all(
                    after[h] == 2
                    for h in before
                    if after[h] != before[h]
                )
                report = coordinator.drain(feed, tick_size=32)
                assert report.messages == len(feed)
        # the join is durable: a replayed ring carries shard 2
        assert load_ring(config).shards == (0, 1, 2)

    def test_add_existing_shard_refused(self, tmp_path, detector):
        config = make_fleet(tmp_path, detector, name="dup", shards=2)
        with telemetry.use(telemetry.MetricsRegistry()):
            with FleetCoordinator.open(config) as coordinator:
                with pytest.raises(FleetError, match="already"):
                    coordinator.add_shard(1)

    def test_remove_shard_journals_leave(self, tmp_path, detector):
        config = make_fleet(tmp_path, detector, name="shrink")
        with telemetry.use(telemetry.MetricsRegistry()):
            with FleetCoordinator.open(config) as coordinator:
                coordinator.remove_shard(2)
                assert coordinator.ring.shards == (0, 1)
        assert load_ring(config).shards == (0, 1)
        events = [
            json.loads(line)["event"]
            for line in config.ring_path.read_text().splitlines()
        ]
        assert events == ["init", "leave"]

    def test_remove_unknown_shard_refused(self, tmp_path, detector):
        config = make_fleet(tmp_path, detector, name="noshard")
        with telemetry.use(telemetry.MetricsRegistry()):
            with FleetCoordinator.open(config) as coordinator:
                with pytest.raises(FleetError, match="not in"):
                    coordinator.remove_shard(9)


class TestSingleShardParity:
    def test_one_shard_fleet_matches_ring(self, tmp_path, detector):
        """A 1-shard fleet routes everything to shard 0 (sanity for
        the benchmark's 1-shard baseline)."""
        config = make_fleet(tmp_path, detector, name="solo", shards=1)
        ring = load_ring(config)
        assert isinstance(ring, HashRing)
        assert all(
            ring.assign(host) == 0 for host in HOSTS
        )

    def test_scores_are_float64_reprs(self, tmp_path, detector, feed):
        config = make_fleet(tmp_path, detector, name="repr", shards=1)
        with telemetry.use(telemetry.MetricsRegistry()):
            with FleetCoordinator.open(config) as coordinator:
                coordinator.drain(feed, tick_size=64)
        rows = read_rows(config)
        for row in rows[:32]:
            score = row.split(",")[3]
            value = float(score)
            assert repr(value) == score
            assert np.isfinite(value) or np.isnan(value)
