"""Tests for repro.runtime.checkpoint (snapshot/restore).

The load-bearing property: restoring a checkpoint into a freshly
constructed monitor and continuing the stream is bitwise identical to
never having snapshotted — scores, warnings and counters alike.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.detector import LSTMAnomalyDetector
from repro.core.online import OnlineMonitor
from repro.logs.templates import TemplateStore
from repro.runtime.checkpoint import (
    CHECKPOINT_VERSION,
    read_checkpoint,
    write_checkpoint,
)
from repro.timeutil import TRACE_START
from tests.conftest import make_message

TEXTS = [
    "ALPHA: phase one complete",
    "BRAVO: phase two complete",
    "CHARLIE: phase three complete",
    "DELTA: phase four complete",
]


def cyclic_stream(n, start=TRACE_START, period=10.0, host="vpe00"):
    return [
        make_message(
            timestamp=start + i * period,
            host=host,
            text=TEXTS[i % len(TEXTS)],
        )
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def detector():
    train = cyclic_stream(600)
    store = TemplateStore().fit(train)
    return LSTMAnomalyDetector(
        store,
        vocabulary_capacity=16,
        window=4,
        hidden=(12, 12),
        id_dim=8,
        epochs=6,
        oversample_rounds=0,
        seed=0,
    ).fit(train)


def fresh_monitor(detector, threshold=4.0):
    return OnlineMonitor(detector, threshold, strict_order=False)


def assert_states_equal(a, b):
    """Exact (bitwise for arrays, == for scalars) state equality."""
    assert a.keys() == b.keys()
    for key, value in a.items():
        if isinstance(value, dict):
            assert_states_equal(value, b[key])
        elif isinstance(value, np.ndarray):
            assert value.dtype == b[key].dtype
            assert np.array_equal(value, b[key], equal_nan=True)
        else:
            assert value == b[key], key


class TestRoundTrip:
    def test_file_roundtrip_exact(self, detector, tmp_path):
        monitor = fresh_monitor(detector)
        monitor.run(cyclic_stream(100), tick_size=16)
        path = tmp_path / "checkpoint.npz"
        write_checkpoint(path, monitor, cursor=7, extra={"n_ticks": 9})
        checkpoint = read_checkpoint(path)
        assert checkpoint.cursor == 7
        assert checkpoint.extra == {"n_ticks": 9}
        restored = fresh_monitor(detector)
        checkpoint.restore(restored)
        assert_states_equal(
            monitor.state_dict(), restored.state_dict()
        )

    def test_continuation_parity(self, detector, tmp_path):
        """Snapshot-restore-continue == never snapshotted, bitwise."""
        stream = cyclic_stream(160, host="vpe00") + cyclic_stream(
            160, start=TRACE_START + 5.0, host="vpe01"
        )
        stream.sort(key=lambda m: m.timestamp)
        head, tail = stream[:200], stream[200:]

        straight = fresh_monitor(detector)
        straight.run(head, tick_size=32)
        base_batch = straight.scorer.observe_batch(tail)

        snapshotted = fresh_monitor(detector)
        snapshotted.run(head, tick_size=32)
        path = tmp_path / "checkpoint.npz"
        write_checkpoint(path, snapshotted, cursor=0)
        restored = fresh_monitor(detector)
        read_checkpoint(path).restore(restored)
        new_batch = restored.scorer.observe_batch(tail)

        assert np.array_equal(
            base_batch.scores, new_batch.scores, equal_nan=True
        )
        assert np.array_equal(base_batch.kept, new_batch.kept)

    def test_overwrite_is_atomic_replace(self, detector, tmp_path):
        monitor = fresh_monitor(detector)
        monitor.run(cyclic_stream(40), tick_size=8)
        path = tmp_path / "checkpoint.npz"
        write_checkpoint(path, monitor, cursor=1)
        monitor.run(cyclic_stream(40, start=TRACE_START + 500.0))
        write_checkpoint(path, monitor, cursor=2)
        assert not path.with_name(path.name + ".tmp").exists()
        assert read_checkpoint(path).cursor == 2

    def test_version_rejected(self, detector, tmp_path):
        monitor = fresh_monitor(detector)
        path = tmp_path / "checkpoint.npz"
        write_checkpoint(path, monitor, cursor=0)
        import json

        data = np.load(path)
        meta = json.loads(str(data["meta"]))
        meta["checkpoint_version"] = CHECKPOINT_VERSION + 1
        arrays = {
            key: data[key] for key in data.files if key != "meta"
        }
        np.savez(path, meta=np.array(json.dumps(meta)), **arrays)
        with pytest.raises(ValueError, match="version"):
            read_checkpoint(path)


class TestStateProperty:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        offsets=st.lists(
            st.floats(min_value=0.0, max_value=3600.0,
                      allow_nan=False),
            min_size=1,
            max_size=40,
        ),
        hosts=st.lists(
            st.sampled_from(["vpe00", "vpe01", "vpe02"]),
            min_size=1,
            max_size=40,
        ),
    )
    def test_arbitrary_state_roundtrips(
        self, detector, tmp_path, offsets, hosts
    ):
        """Any reachable monitor state survives the npz round-trip."""
        monitor = fresh_monitor(detector, threshold=0.5)
        messages = [
            make_message(
                timestamp=TRACE_START + offset,
                host=host,
                text=TEXTS[i % len(TEXTS)],
            )
            for i, (offset, host) in enumerate(zip(offsets, hosts))
        ]
        messages.sort(key=lambda m: m.timestamp)
        monitor.run(messages, tick_size=8)
        path = tmp_path / "checkpoint.npz"
        write_checkpoint(path, monitor, cursor=len(messages))
        restored = fresh_monitor(detector, threshold=0.5)
        read_checkpoint(path).restore(restored)
        assert_states_equal(
            monitor.state_dict(), restored.state_dict()
        )
