"""Tests for repro.runtime.codec (binary tick record codec).

The encoder writes into a persistent arena, so alongside the usual
roundtrip/validation cases the suite pins the two properties the
service depends on: re-encoding does not disturb a previously returned
payload *once copied into the WAL*, and the service can still replay
journals whose records are legacy JSON.
"""

import json

import pytest

from repro.logs.message import Facility, Severity, SyslogMessage
from repro.runtime.codec import (
    CODEC_VERSION,
    TICK_MAGIC,
    TickEncoder,
    decode_tick,
)
from tests.conftest import make_message


def sample_tick():
    return [
        make_message(timestamp=100.0, host="vpe00", text="ALPHA: one"),
        SyslogMessage(
            timestamp=100.25,
            host="vpe01",
            process="chassisd",
            text="BRAVO: two",
            severity=Severity.ERROR,
            facility=Facility.KERNEL,
        ),
        make_message(timestamp=101.5, host="vpe00", text="CHARLIE: 3"),
    ]


class TestRoundtrip:
    def test_messages_roundtrip_exactly(self):
        tick = sample_tick()
        decoded = decode_tick(bytes(TickEncoder().encode(tick)))
        assert decoded == tick
        for original, copy in zip(tick, decoded):
            assert copy.timestamp == original.timestamp  # exact f64
            assert copy.severity is original.severity
            assert copy.facility is original.facility

    def test_empty_tick_roundtrips(self):
        assert decode_tick(bytes(TickEncoder().encode([]))) == []

    def test_unicode_and_empty_strings_roundtrip(self):
        tick = [
            make_message(text="Schrödinger's vPE ✓"),
            make_message(text=""),
        ]
        assert decode_tick(bytes(TickEncoder().encode(tick))) == tick

    def test_payload_starts_with_magic_not_json(self):
        payload = bytes(TickEncoder().encode(sample_tick()))
        assert payload[0] == TICK_MAGIC
        assert payload[:1] != b"{"
        assert payload[1] == CODEC_VERSION


class TestArena:
    def test_encoder_reuses_its_arena(self):
        encoder = TickEncoder()
        tick = sample_tick()
        first = encoder.encode(tick)
        buffer = first.obj
        copied = bytes(first)
        second = encoder.encode(sample_tick())
        assert second.obj is buffer  # no regrowth at steady state
        assert bytes(second) == copied

    def test_arena_grows_for_large_ticks(self):
        encoder = TickEncoder()
        tick = [
            make_message(timestamp=100.0 + i, text="X" * 4096)
            for i in range(64)
        ]
        payload = bytes(encoder.encode(tick))
        assert decode_tick(payload) == tick

    def test_reencode_invalidates_prior_view_not_prior_copy(self):
        encoder = TickEncoder()
        copied = bytes(encoder.encode(sample_tick()))
        encoder.encode([make_message(text="overwrites the arena")])
        assert decode_tick(copied) == sample_tick()


class TestValidation:
    def test_rejects_bad_magic(self):
        payload = bytearray(TickEncoder().encode(sample_tick()))
        payload[0] = 0x7C
        with pytest.raises(ValueError, match="magic"):
            decode_tick(bytes(payload))

    def test_rejects_unknown_version(self):
        payload = bytearray(TickEncoder().encode(sample_tick()))
        payload[1] = CODEC_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            decode_tick(bytes(payload))

    def test_rejects_truncated_payload(self):
        payload = bytes(TickEncoder().encode(sample_tick()))
        for cut in (len(payload) // 2, len(payload) - 1):
            with pytest.raises(ValueError, match="truncat"):
                decode_tick(payload[:cut])

    def test_rejects_payload_shorter_than_prefix(self):
        with pytest.raises(ValueError, match="too short"):
            decode_tick(b"")
        with pytest.raises(ValueError, match="too short"):
            decode_tick(bytes([TICK_MAGIC, CODEC_VERSION]))


class TestLegacyJson:
    def test_json_records_are_not_mistaken_for_ticks(self):
        legacy = json.dumps({"kind": "tick", "messages": []}).encode()
        assert legacy[:1] == b"{"
        with pytest.raises(ValueError, match="magic"):
            decode_tick(legacy)
