"""Property test: an adaptation round trip leaves no residue.

The probation guard's contract is that rolling back a bad fine-tune
fully undoes it: after fine-tune -> publish -> swap -> rollback, the
scorer must produce bitwise-identical float64 scores to a scorer that
never swapped — whatever the traffic served before, during and after
the excursion, and even when the student was poisoned.  Hypothesis
drives the traffic mix and the fine-tune shape; the release store
round-trip (publish, swap, rollback) is the real artifact-store path.
"""

import copy
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import telemetry
from repro.core.adaptation import transfer_adapt
from repro.core.detector import LSTMAnomalyDetector
from repro.logs.templates import TemplateStore
from repro.runtime.adapt import poison_detector
from repro.runtime.service import (
    detector_from_release,
    stage_release,
)
from repro.runtime.store import ArtifactStore
from repro.timeutil import TRACE_START
from tests.conftest import make_message

TEXTS = [
    "ALPHA: phase one complete",
    "BRAVO: phase two complete",
    "CHARLIE: phase three complete",
    "DELTA: phase four complete",
    "ECHO: updated daemon came online",
    "FOXTROT: updated daemon heartbeat",
    "GOLF: updated daemon sync done",
    "HOTEL: updated daemon cache warm",
]


def messages_for(indices, start):
    return [
        make_message(
            timestamp=start + i * 10.0,
            host="vpe00",
            text=TEXTS[index % len(TEXTS)],
        )
        for i, index in enumerate(indices)
    ]


@pytest.fixture(scope="module")
def detector():
    train = messages_for(
        [i % len(TEXTS) for i in range(600)], TRACE_START
    )
    store = TemplateStore().fit(train)
    return LSTMAnomalyDetector(
        store,
        vocabulary_capacity=16,
        window=4,
        hidden=(10, 10),
        id_dim=6,
        epochs=4,
        oversample_rounds=0,
        seed=0,
    ).fit(train)


segment = st.lists(
    st.integers(min_value=0, max_value=len(TEXTS) - 1),
    min_size=12,
    max_size=32,
)


class TestAdaptRoundTrip:
    @settings(max_examples=6, deadline=None)
    @given(
        mid=segment,
        post=segment,
        tune_on=segment,
        epochs=st.integers(min_value=1, max_value=2),
        poison=st.booleans(),
    )
    def test_rollback_restores_bitwise_scores(
        self, detector, mid, post, tune_on, epochs, poison
    ):
        with telemetry.use(telemetry.MetricsRegistry()):
            with tempfile.TemporaryDirectory() as tmp:
                store = ArtifactStore(Path(tmp), keep_releases=4)
                stage_release(store, detector, 2.0)

                never = copy.deepcopy(detector)
                live = copy.deepcopy(detector)

                mid_msgs = messages_for(mid, TRACE_START + 9000.0)
                post_msgs = messages_for(post, TRACE_START + 9800.0)

                # fine-tune -> publish -> swap
                student = transfer_adapt(
                    live,
                    messages_for(tune_on, TRACE_START + 8000.0),
                    epochs=epochs,
                )
                if poison:
                    poison_detector(student)
                release = stage_release(store, student, 2.0)
                swapped, _ = detector_from_release(
                    store, release.release_id
                )
                live.model.set_weights(swapped.model.get_weights())
                live.score(mid_msgs)

                # rollback through the store
                restored = store.rollback()
                assert restored.release_id == 1
                back, _ = detector_from_release(
                    store, restored.release_id
                )
                live.model.set_weights(back.model.get_weights())

                never.score(mid_msgs)
                assert np.array_equal(
                    never.score(post_msgs).scores,
                    live.score(post_msgs).scores,
                    equal_nan=True,
                )
