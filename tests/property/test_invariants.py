"""Cross-cutting property-based tests on core invariants.

These complement the per-module suites: each property here encodes an
invariant that evaluation correctness depends on, checked over
hypothesis-generated inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mapping import (
    AnomalyKind,
    map_anomalies,
    warning_clusters,
)
from repro.evaluation.metrics import DetectionCounts
from repro.logs.templates import TemplateStore
from repro.tickets.ticket import RootCause, TroubleTicket
from repro.timeutil import DAY, HOUR
from tests.conftest import make_message

BASE = 500 * DAY

times_strategy = st.lists(
    st.floats(min_value=BASE - 40 * DAY, max_value=BASE + 40 * DAY,
              allow_nan=False),
    max_size=60,
)


class TestWarningClusterProperties:
    @given(times_strategy, st.integers(1, 4))
    def test_output_bounded_and_sorted(self, times, min_size):
        clusters = warning_clusters(
            np.asarray(times), min_size=min_size
        )
        assert clusters.size <= len(times)
        assert np.all(np.diff(clusters) >= 0)
        # every cluster start is one of the input times
        assert set(clusters.tolist()) <= set(
            np.asarray(times, dtype=np.float64).tolist()
        )

    @given(times_strategy)
    def test_min_size_monotone(self, times):
        """Raising min_size can only reduce the cluster count."""
        sizes = [
            warning_clusters(np.asarray(times), min_size=k).size
            for k in (1, 2, 3)
        ]
        assert sizes[0] >= sizes[1] >= sizes[2]

    @given(times_strategy, st.floats(min_value=1.0, max_value=3600.0))
    def test_gap_monotone(self, times, gap):
        """A wider merge gap can only reduce the cluster count."""
        few = warning_clusters(
            np.asarray(times), min_size=1, max_gap=gap
        ).size
        fewer = warning_clusters(
            np.asarray(times), min_size=1, max_gap=gap * 2
        ).size
        assert fewer <= few


def tickets_strategy():
    def build(offsets):
        return [
            TroubleTicket(
                vpe="vpe00",
                root_cause=RootCause.CIRCUIT,
                report_time=BASE + offset * HOUR,
                repair_time=BASE + offset * HOUR + 2 * HOUR,
            )
            for offset in offsets
        ]
    return st.lists(
        st.floats(min_value=-200, max_value=200, allow_nan=False),
        max_size=8,
        unique=True,
    ).map(build)


class TestMappingProperties:
    @settings(max_examples=50)
    @given(times_strategy, tickets_strategy())
    def test_every_anomaly_classified_once(self, times, tickets):
        mapping = map_anomalies(
            {"vpe00": np.asarray(times)}, tickets
        )
        assert len(mapping.records) == len(times)
        counts = mapping.counts
        assert (
            counts.true_anomalies + counts.false_alarms
            == len(times)
        )

    @settings(max_examples=50)
    @given(times_strategy, tickets_strategy())
    def test_detected_tickets_bounded(self, times, tickets):
        mapping = map_anomalies(
            {"vpe00": np.asarray(times)}, tickets
        )
        counts = mapping.counts
        assert 0 <= counts.tickets_detected <= len(tickets)
        assert 0.0 <= counts.precision <= 1.0
        assert 0.0 <= counts.recall <= 1.0
        assert 0.0 <= counts.f_measure <= 1.0

    @settings(max_examples=50)
    @given(times_strategy, tickets_strategy())
    def test_hits_only_for_contained_times(self, times, tickets):
        mapping = map_anomalies(
            {"vpe00": np.asarray(times)}, tickets
        )
        by_id = {t.ticket_id: t for t in tickets}
        for ticket_id, hits in mapping.ticket_hits.items():
            timeline = by_id[ticket_id].timeline(
                mapping.predictive_period
            )
            for hit in hits:
                assert timeline.contains(hit.time)

    @settings(max_examples=30)
    @given(times_strategy, tickets_strategy())
    def test_widening_window_never_reduces_recall(self, times,
                                                  tickets):
        narrow = map_anomalies(
            {"vpe00": np.asarray(times)}, tickets,
            predictive_period=HOUR,
        ).counts
        wide = map_anomalies(
            {"vpe00": np.asarray(times)}, tickets,
            predictive_period=DAY,
        ).counts
        assert wide.tickets_detected >= narrow.tickets_detected
        assert wide.false_alarms <= narrow.false_alarms


class TestTemplateStoreProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.sampled_from([
                "ALPHA: event one fired",
                "BETA: event two fired",
                "GAMMA: event three fired now",
                "DELTA: something else happened here",
            ]),
            min_size=1,
            max_size=40,
        )
    )
    def test_match_is_stable_and_consistent(self, texts):
        messages = [
            make_message(timestamp=BASE + i, text=text)
            for i, text in enumerate(texts)
        ]
        store = TemplateStore().fit(messages)
        first = [store.match(m) for m in messages]
        second = [store.match(m) for m in messages]
        assert first == second
        annotated = store.transform(messages)
        assert [m.template_id for m in annotated] == first
        # identical texts always share an id
        by_text = {}
        for message, template_id in zip(messages, first):
            by_text.setdefault(message.text, set()).add(template_id)
        assert all(len(ids) == 1 for ids in by_text.values())


class TestDetectionCountsProperties:
    @given(
        st.integers(0, 100),
        st.integers(0, 100),
        st.integers(0, 100),
    )
    def test_f_between_precision_and_recall_bounds(
        self, true_anomalies, false_alarms, detected
    ):
        counts = DetectionCounts(
            true_anomalies=true_anomalies,
            false_alarms=false_alarms,
            tickets_detected=min(detected, 100),
            tickets_total=100,
        )
        assert counts.f_measure <= max(
            counts.precision, counts.recall
        ) + 1e-12
        assert counts.f_measure >= 0.0
