"""Tests for the deterministic topology synthesizer.

The reproducibility contract matters most: the same ``(devices,
seed)`` must yield the same graph in any process — including a fresh
interpreter, matching the ring's no-process-salted-hash rule.
"""

import json
import subprocess
import sys

import pytest

from repro.topology import (
    KIND_CABLE,
    KIND_CIRCUIT,
    KIND_SITE,
    KIND_SOFTWARE,
    TopologyConfig,
    generate_topology,
)

DEVICES = [f"vpe{i:02d}" for i in range(16)]


class TestShape:
    def test_every_device_covered(self):
        topology = generate_topology(DEVICES, TopologyConfig(seed=3))
        assert topology.devices == tuple(sorted(DEVICES))
        for device in DEVICES:
            chain = topology.ancestry(device)
            assert len(chain) == 5
            kinds = [topology.kind(element) for element in chain[1:]]
            assert kinds == [
                KIND_CIRCUIT, KIND_SOFTWARE, KIND_SITE, KIND_CABLE,
            ]

    def test_round_robin_keeps_elements_non_empty(self):
        topology = generate_topology(DEVICES, TopologyConfig(seed=3))
        for element in topology.elements:
            assert topology.covered(element)

    def test_group_sizes_follow_config(self):
        config = TopologyConfig(
            devices_per_circuit=2,
            circuits_per_site=2,
            sites_per_cable=2,
            seed=3,
        )
        topology = generate_topology(DEVICES, config)
        kinds = [topology.kind(e) for e in topology.elements]
        assert kinds.count(KIND_CIRCUIT) == 8
        assert kinds.count(KIND_SITE) == 4
        assert kinds.count(KIND_CABLE) == 2

    def test_device_order_is_irrelevant(self):
        config = TopologyConfig(seed=5)
        forward = generate_topology(DEVICES, config)
        backward = generate_topology(DEVICES[::-1], config)
        assert forward.to_dict() == backward.to_dict()

    def test_seed_changes_the_graph(self):
        a = generate_topology(DEVICES, TopologyConfig(seed=0))
        b = generate_topology(DEVICES, TopologyConfig(seed=1))
        assert a.to_dict() != b.to_dict()

    def test_same_seed_same_graph(self):
        a = generate_topology(DEVICES, TopologyConfig(seed=9))
        b = generate_topology(DEVICES, TopologyConfig(seed=9))
        assert a.to_dict() == b.to_dict()


class TestValidation:
    def test_empty_devices_rejected(self):
        with pytest.raises(ValueError, match="zero devices"):
            generate_topology([], TopologyConfig())

    def test_duplicate_devices_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            generate_topology(["a", "a"], TopologyConfig())

    @pytest.mark.parametrize(
        "field",
        [
            "devices_per_circuit",
            "circuits_per_site",
            "sites_per_cable",
            "n_software_versions",
        ],
    )
    def test_config_rejects_non_positive(self, field):
        with pytest.raises(ValueError, match=field):
            TopologyConfig(**{field: 0})


_DETERMINISM_SCRIPT = """
import json
from repro.topology import TopologyConfig, generate_topology

devices = [f"vpe{i:02d}" for i in range(16)]
topology = generate_topology(devices, TopologyConfig(seed=13))
print(json.dumps(topology.to_dict(), sort_keys=True))
"""


def test_stable_across_fresh_interpreters():
    """Two cold interpreter runs must print byte-identical graphs —
    no ``hash()``, no OS entropy anywhere in the generator."""
    outputs = [
        subprocess.run(
            [sys.executable, "-c", _DETERMINISM_SCRIPT],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        for _ in range(2)
    ]
    assert outputs[0] == outputs[1]
    in_process = generate_topology(
        DEVICES, TopologyConfig(seed=13)
    ).to_dict()
    assert json.loads(outputs[0]) == in_process
