"""Unit tests for the fleet topology graph model."""

import pytest

from repro.topology import (
    KIND_CABLE,
    KIND_CIRCUIT,
    KIND_DEVICE,
    KIND_SITE,
    KIND_SOFTWARE,
    TOPOLOGY_VERSION,
    FleetTopology,
    TopologyError,
    cause_kind_for,
)


@pytest.fixture()
def topology():
    return FleetTopology(
        device_circuit={
            "a1": "circ-a", "a2": "circ-a",
            "b1": "circ-b", "b2": "circ-b",
        },
        circuit_site={"circ-a": "site-0", "circ-b": "site-0"},
        site_cable={"site-0": "cable-0"},
        device_software={
            "a1": "sw-1", "a2": "sw-1", "b1": "sw-2", "b2": "sw-2",
        },
    )


class TestValidation:
    def test_device_maps_must_agree(self):
        with pytest.raises(TopologyError, match="same device set"):
            FleetTopology(
                device_circuit={"a": "c"},
                circuit_site={"c": "s"},
                site_cable={"s": "k"},
                device_software={"b": "v"},
            )

    def test_circuit_without_site_rejected(self):
        with pytest.raises(TopologyError, match="without a site"):
            FleetTopology(
                device_circuit={"a": "c"},
                circuit_site={},
                site_cable={},
                device_software={"a": "v"},
            )

    def test_site_without_cable_rejected(self):
        with pytest.raises(TopologyError, match="without a cable"):
            FleetTopology(
                device_circuit={"a": "c"},
                circuit_site={"c": "s"},
                site_cable={},
                device_software={"a": "v"},
            )

    def test_unknown_element_raises(self, topology):
        with pytest.raises(TopologyError):
            topology.kind("nope")
        with pytest.raises(TopologyError):
            topology.covered("nope")
        with pytest.raises(TopologyError):
            topology.ancestry("nope")


class TestIntrospection:
    def test_kinds_and_hops(self, topology):
        expected = {
            "a1": (KIND_DEVICE, 0),
            "circ-a": (KIND_CIRCUIT, 1),
            "sw-1": (KIND_SOFTWARE, 1),
            "site-0": (KIND_SITE, 2),
            "cable-0": (KIND_CABLE, 3),
        }
        for element, (kind, hops) in expected.items():
            assert topology.kind(element) == kind
            assert topology.hops(element) == hops

    def test_covered_sets(self, topology):
        assert topology.covered("a1") == frozenset({"a1"})
        assert topology.covered("circ-a") == frozenset({"a1", "a2"})
        assert topology.covered("sw-2") == frozenset({"b1", "b2"})
        assert topology.covered("cable-0") == frozenset(
            {"a1", "a2", "b1", "b2"}
        )

    def test_ancestry_nearest_first(self, topology):
        assert topology.ancestry("b1") == (
            "b1", "circ-b", "sw-2", "site-0", "cable-0",
        )

    def test_containers(self, topology):
        assert len(topology) == 4
        assert "circ-a" in topology
        assert "nope" not in topology
        assert topology.devices == ("a1", "a2", "b1", "b2")
        assert set(topology.devices) <= set(topology.elements)

    def test_common_elements(self, topology):
        assert topology.common_elements([]) == ()
        assert topology.common_elements(["a1", "a2"]) == (
            "circ-a", "sw-1", "site-0", "cable-0",
        )
        # Across circuits and cohorts only the site chain remains.
        assert topology.common_elements(["a1", "b1"]) == (
            "site-0", "cable-0",
        )

    def test_cause_kind_for(self, topology):
        assert cause_kind_for(topology, "circ-a") == KIND_CIRCUIT
        assert cause_kind_for(topology, "unmapped") == KIND_DEVICE
        assert cause_kind_for(None, "circ-a") == KIND_DEVICE


class TestSerialization:
    def test_dict_round_trip(self, topology):
        raw = topology.to_dict()
        assert raw["version"] == TOPOLOGY_VERSION
        rebuilt = FleetTopology.from_dict(raw)
        assert rebuilt.to_dict() == raw
        assert rebuilt.ancestry("a1") == topology.ancestry("a1")

    def test_version_mismatch_refused(self, topology):
        raw = topology.to_dict()
        raw["version"] = TOPOLOGY_VERSION + 1
        with pytest.raises(TopologyError, match="version"):
            FleetTopology.from_dict(raw)

    def test_missing_key_refused(self, topology):
        raw = topology.to_dict()
        del raw["site_cable"]
        with pytest.raises(TopologyError, match="missing"):
            FleetTopology.from_dict(raw)

    def test_save_load_round_trip(self, topology, tmp_path):
        path = tmp_path / "topology.json"
        topology.save(path)
        assert FleetTopology.load(path).to_dict() == topology.to_dict()

    def test_load_unreadable_raises(self, tmp_path):
        with pytest.raises(TopologyError, match="cannot read"):
            FleetTopology.load(tmp_path / "missing.json")
        garbled = tmp_path / "garbled.json"
        garbled.write_text("{not json")
        with pytest.raises(TopologyError, match="cannot read"):
            FleetTopology.load(garbled)
