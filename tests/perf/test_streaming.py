"""Smoke test for the streaming benchmark suite (``-m perf`` only).

Runs the reduced device sweep end to end and checks the record shape
plus loose speedup floors — loose because CI machines are noisy and
the real acceptance number (>= 10x at 38 devices, float32) lives in
``BENCH_streaming.json`` at the default scale.  Deselected by default
via ``addopts = '-m "not perf"'``.
"""

import pathlib
import sys

import pytest

pytestmark = pytest.mark.perf

_BENCH_DIR = (
    pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "perf"
)
if str(_BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(_BENCH_DIR))


@pytest.fixture(scope="module")
def reduced_record():
    import streaming

    return streaming.run("reduced")


class TestReducedSweep:
    def test_record_shape(self, reduced_record):
        assert reduced_record["scale"] == "reduced"
        streaming_bench = reduced_record["benchmarks"][
            "streaming_scoring"
        ]
        sweep = streaming_bench["device_sweep"]
        assert [point["devices"] for point in sweep] == [1, 8, 32]
        for point in sweep:
            assert point["timed_messages"] > 0
            assert point["legacy_msgs_per_s"] > 0

    def test_micro_batching_pays_off_at_fleet_scale(
        self, reduced_record
    ):
        """At the largest reduced fleet the fused path must win big.

        The floor is far below the >= 10x default-scale acceptance
        number on purpose: this is a smoke test on shared hardware.
        """
        sweep = reduced_record["benchmarks"]["streaming_scoring"][
            "device_sweep"
        ]
        largest = sweep[-1]
        assert largest["speedup_f32"] > 3.0
        assert largest["speedup_f64"] > 2.0

    def test_f32_not_slower_than_f64(self, reduced_record):
        sweep = reduced_record["benchmarks"]["streaming_scoring"][
            "device_sweep"
        ]
        largest = sweep[-1]
        assert (
            largest["stream_f32_msgs_per_s"]
            >= 0.8 * largest["stream_f64_msgs_per_s"]
        )
