"""Smoke test for the hot-path benchmark suite (``-m perf`` only).

Runs the reduced scale end to end and checks the record shape plus a
loose speedup floor — loose because CI machines are noisy and the real
acceptance numbers live in ``BENCH_hotpath.json`` at the default
scale.  Deselected by default via ``addopts = '-m "not perf"'``.
"""

import pathlib
import sys

import pytest

pytestmark = pytest.mark.perf

_BENCH_DIR = (
    pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "perf"
)
if str(_BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(_BENCH_DIR))


@pytest.fixture(scope="module")
def reduced_record():
    import hotpath

    return hotpath.run("reduced")


class TestReducedScale:
    def test_record_shape(self, reduced_record):
        assert reduced_record["scale"] == "reduced"
        benchmarks = reduced_record["benchmarks"]
        assert set(benchmarks) == {
            "lstm_step_throughput",
            "template_transform",
            "detector_fit_score",
        }

    def test_lstm_not_slower(self, reduced_record):
        lstm = reduced_record["benchmarks"]["lstm_step_throughput"]
        assert lstm["speedup"] > 0.8

    def test_template_memo_pays_off(self, reduced_record):
        transform = reduced_record["benchmarks"]["template_transform"]
        assert transform["speedup"] > 2.0
        assert transform["hit_rate"] > 0.5

    def test_fit_and_score_faster(self, reduced_record):
        fit_score = reduced_record["benchmarks"]["detector_fit_score"]
        assert fit_score["fit_speedup"] > 1.2
        assert fit_score["score_speedup"] > 1.2
        # All three sides must score the same number of messages.
        assert (
            fit_score["before_scored_messages"]
            == fit_score["after_scored_messages"]
            == fit_score["after_f64_scored_messages"]
        )
