"""WAL-overhead gate for the durable runtime (``-m perf``).

Drains the reduced fleet stream twice — once through a bare
:class:`~repro.core.online.OnlineMonitor` (WAL off), once through a
:class:`~repro.runtime.service.MonitorService` journaling every tick
(WAL on) — and pins the journaling side's overhead at under 5%.  The
positional row codec and per-tick (never per-message) appends are what
keep this bound cheap to hold.  Deselected by default via
``addopts = '-m "not perf"'``.
"""

import pathlib
import sys

import pytest

pytestmark = pytest.mark.perf

_BENCH_DIR = (
    pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "perf"
)
if str(_BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(_BENCH_DIR))

#: The ISSUE acceptance bound; best-of-repeats timing absorbs most CI
#: noise, the gap between the ~1% measured and 5% absorbs the rest.
MAX_OVERHEAD_FRACTION = 0.05


@pytest.fixture(scope="module")
def runtime_module():
    import runtime

    return runtime


@pytest.fixture(scope="module")
def wal_record(runtime_module):
    scale = runtime_module.SCALES["reduced"]
    detector = runtime_module.build_detector(scale)
    return runtime_module.bench_wal_overhead(scale, detector)


def test_record_shape(wal_record):
    assert wal_record["devices"] == 16
    assert wal_record["timed_messages"] > 0
    assert wal_record["wal_off_s"] > 0
    assert wal_record["wal_on_s"] > 0
    assert wal_record["wal_on_msgs_per_s"] > 0


def test_wal_overhead_under_five_percent(wal_record):
    assert wal_record["overhead_fraction"] < MAX_OVERHEAD_FRACTION, (
        "journaling every tick costs "
        f"{wal_record['overhead_fraction']:.2%} over the bare "
        "monitor drain"
    )


def test_checkpoint_roundtrip_latency(runtime_module):
    scale = runtime_module.SCALES["reduced"]
    detector = runtime_module.build_detector(scale)
    record = runtime_module.bench_checkpoint(scale, detector)
    assert record["checkpoint_bytes"] > 0
    assert record["write_s"] > 0
    assert record["restore_s"] > 0
