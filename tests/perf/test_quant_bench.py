"""Smoke test for the quantized-inference benchmark (``-m perf``).

Runs the reduced int8-vs-float32 comparison end to end and checks the
record shape plus loose floors — loose because CI machines are noisy
and the real acceptance numbers (>= 1.5x float32 throughput at >= 99%
decision agreement) live in ``BENCH_quant.json`` at the default scale.
Deselected by default via ``addopts = '-m "not perf"'``.
"""

import pathlib
import sys

import pytest

pytestmark = pytest.mark.perf

_BENCH_DIR = (
    pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "perf"
)
if str(_BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(_BENCH_DIR))


@pytest.fixture(scope="module")
def quant_record():
    import quant

    return quant.run("reduced")


def test_record_shape(quant_record):
    assert quant_record["scale"] == "reduced"
    record = quant_record["benchmarks"]["quantized_inference"]
    assert record["devices"] == 32
    assert record["timed_messages"] > 0
    assert record["n_decisions"] > 0
    assert record["f32_msgs_per_s"] > 0
    assert record["int8_msgs_per_s"] > 0


def test_int8_beats_f32(quant_record):
    """The floor is far below the >= 1.5x default-scale acceptance
    number on purpose: this is a smoke test on shared hardware."""
    record = quant_record["benchmarks"]["quantized_inference"]
    assert record["speedup_vs_f32"] > 1.1


def test_decisions_agree_with_float64(quant_record):
    record = quant_record["benchmarks"]["quantized_inference"]
    assert record["decision_agreement"] >= 0.99
    assert record["f32_decision_agreement"] >= 0.99
