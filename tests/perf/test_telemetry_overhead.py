"""Telemetry-overhead gate for the streaming hot path (``-m perf``).

Times the reduced streaming drain twice — once under the no-op
:class:`~repro.telemetry.NullRegistry`, once under a live
:class:`~repro.telemetry.MetricsRegistry` — and pins the live side's
overhead at under 3%.  Instrumentation publishes per tick, never per
message, which is what keeps this bound cheap to hold.  Deselected by
default via ``addopts = '-m "not perf"'``.
"""

import pathlib
import sys

import pytest

pytestmark = pytest.mark.perf

_BENCH_DIR = (
    pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "perf"
)
if str(_BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(_BENCH_DIR))

#: CI boxes are noisy; the acceptance bound is 3%, asserted with a
#: little headroom consumed by the best-of-repeats timing.
MAX_OVERHEAD_FRACTION = 0.03


@pytest.fixture(scope="module")
def overhead_record():
    import streaming

    scale = streaming.SCALES["reduced"]
    f64, _ = streaming.build_detectors(scale)
    return streaming.bench_telemetry_overhead(scale, f64)


def test_record_shape(overhead_record):
    assert overhead_record["devices"] == 32
    assert overhead_record["timed_messages"] > 0
    assert overhead_record["null_registry_s"] > 0
    assert overhead_record["live_registry_s"] > 0


def test_overhead_under_three_percent(overhead_record):
    assert (
        overhead_record["overhead_fraction"] < MAX_OVERHEAD_FRACTION
    ), (
        "live telemetry registry costs "
        f"{overhead_record['overhead_fraction']:.2%} over the no-op "
        "registry on the streaming drain"
    )
