"""Gates for the closed-loop adaptation benchmark.

Two layers: a perf-marked smoke run of the reduced suite (deselected
by default via ``addopts = '-m "not perf"'``), and an always-on check
that the checked-in ``BENCH_adapt.json`` trajectory pins the
acceptance number — ingest throughput dips < 20% while the
background fine-tune worker trains.
"""

import json
import pathlib
import sys

import pytest

_ROOT = pathlib.Path(__file__).resolve().parents[2]
_BENCH_DIR = _ROOT / "benchmarks" / "perf"
if str(_BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(_BENCH_DIR))


def newest_default_run():
    payload = json.loads((_ROOT / "BENCH_adapt.json").read_text())
    runs = [r for r in payload["runs"] if r["scale"] == "default"]
    assert runs, "BENCH_adapt.json has no default-scale run"
    return runs[-1]


class TestTrajectoryPins:
    """Always-on: the checked-in default-scale numbers are the
    acceptance record."""

    def test_ingest_dip_under_20_percent(self):
        record = newest_default_run()["benchmarks"]
        ingest = record["background_ingest"]
        assert ingest["tuning_ticks"] > 0
        assert ingest["dip_fraction"] < 0.20

    def test_record_shape(self):
        record = newest_default_run()["benchmarks"]
        tune = record["fine_tune"]
        assert tune["replay_messages"] > 0
        assert tune["fine_tune_s"] > 0
        assert tune["publish_s"] > 0
        swap = record["swap_pause"]
        assert swap["swap_tick_s"] >= swap["median_tick_s"] > 0
        assert swap["pause_s"] < 1.0


@pytest.mark.perf
class TestReducedSmoke:
    @pytest.fixture(scope="class")
    def adapt_record(self):
        import adapt

        return adapt.run("reduced")

    def test_record_shape(self, adapt_record):
        assert adapt_record["scale"] == "reduced"
        record = adapt_record["benchmarks"]
        assert record["fine_tune"]["replay_messages"] == 768
        assert record["background_ingest"]["baseline_msgs_per_s"] > 0

    def test_ingest_dip_bounded(self, adapt_record):
        """Looser than the default-scale 20% pin on purpose: this is
        a smoke test on shared, possibly single-core CI hardware."""
        ingest = adapt_record["benchmarks"]["background_ingest"]
        assert ingest["dip_fraction"] < 0.30

    def test_swap_pause_small(self, adapt_record):
        swap = adapt_record["benchmarks"]["swap_pause"]
        assert swap["pause_s"] < 0.5
