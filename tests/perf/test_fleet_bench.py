"""Fleet throughput + kill-drill gate (``-m perf``).

Runs the reduced fleet benchmark (1-vs-4 shards at a sub-4k and a
4k+ device point, plus the kill-one-shard drill) and pins:

* aggregate throughput scaling at the 4k+ device / 4-shard point.
  Shards are OS processes, so the bound is hardware-dependent: with
  4+ cores the ISSUE's >= 2.5x criterion is pinned directly; below
  that the gate pins the single-core floor instead — sharding still
  wins serially at high device counts because each shard's ring-
  buffer working set shrinks to cache size (measured 1.5x at 4096+
  devices on a 1-core host);
* the small-fleet regime must not regress into pathology: 4 shards
  at 512 devices may be slower than 1 (process + routing overhead),
  but never catastrophically so;
* the drill's correctness invariants: the crash kills exactly the
  victim, survivors finish their backlogs, restart replays the WAL,
  and the per-shard score CSVs reach exact row parity with an
  uninterrupted baseline (zero dropped, zero double-scored).

Deselected by default via ``addopts = '-m "not perf"'``.
"""

import pathlib
import sys

import pytest

pytestmark = pytest.mark.perf

_BENCH_DIR = (
    pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "perf"
)
if str(_BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(_BENCH_DIR))

#: The ISSUE acceptance bound, asserted when the hardware can express
#: it (4 shards cannot run in parallel on fewer than 4 cores).
MIN_SCALING_PARALLEL = 2.5

#: Single-core floor at the 4k+ device point: the shared-nothing
#: cache-locality win alone.  Measured ~1.5x; 1.15 absorbs CI noise.
MIN_SCALING_SERIAL = 1.15

#: 4 shards at few devices pay process + routing overhead with no
#: cache win to offset it; bound the damage rather than ban it.
MIN_SCALING_SMALL_FLEET = 0.6


@pytest.fixture(scope="module")
def fleet_module():
    import fleet

    return fleet


@pytest.fixture(scope="module")
def record(fleet_module):
    return fleet_module.run("reduced")


@pytest.fixture(scope="module")
def scaling(record):
    return record["benchmarks"]["fleet_scaling"]


@pytest.fixture(scope="module")
def drill(record):
    return record["benchmarks"]["kill_drill"]


def _point(scaling, devices, shards):
    for point in scaling["sweep"]:
        if point["devices"] == devices and point["shards"] == shards:
            return point
    raise AssertionError(
        f"no sweep point for devices={devices} shards={shards}"
    )


def test_sweep_covers_both_regimes(scaling, fleet_module):
    scale = fleet_module.SCALES["reduced"]
    assert scaling["host_cores"] >= 1
    seen = {(p["devices"], p["shards"]) for p in scaling["sweep"]}
    assert seen == {
        (d, s)
        for d in scale.device_counts
        for s in scale.shard_counts
    }
    assert all(p["msgs_per_s"] > 0 for p in scaling["sweep"])


def test_aggregate_scaling_at_4k_devices(scaling):
    point = _point(scaling, 4096, 4)
    floor = (
        MIN_SCALING_PARALLEL
        if scaling["host_cores"] >= 4
        else MIN_SCALING_SERIAL
    )
    assert point["scaling_vs_1shard"] >= floor, (
        f"4 shards at 4096 devices reached only "
        f"{point['scaling_vs_1shard']:.2f}x vs 1 shard "
        f"(floor {floor}x on {scaling['host_cores']} core(s))"
    )


def test_small_fleet_overhead_bounded(scaling):
    point = _point(scaling, 512, 4)
    assert point["scaling_vs_1shard"] >= MIN_SCALING_SMALL_FLEET, (
        f"4 shards at 512 devices collapsed to "
        f"{point['scaling_vs_1shard']:.2f}x vs 1 shard"
    )


def test_drill_kills_exactly_the_victim(drill):
    assert drill["crashed_dead_shards"] == [drill["killed_shard"]]
    assert drill["resumed_dead_shards"] == []
    assert drill["replayed_ticks"] >= 1


def test_drill_survivors_untouched(drill):
    assert drill["survivors_stalled"] is False


def test_drill_exact_score_parity(drill):
    assert drill["score_parity"] is True
    assert drill["dropped_rows"] == 0
    assert drill["double_scored_rows"] == 0
    # Replay re-lands the crashed tick's rows byte-for-byte, so any
    # duplicates collapse under set union / CI's `sort -u`.
    assert drill["baseline_rows"] == drill["messages"]
