"""Gates for the root-cause-analysis benchmark.

Two layers: a perf-marked smoke run of the reduced suite (deselected
by default via ``addopts = '-m "not perf"'``), and an always-on check
that the checked-in ``BENCH_rca.json`` trajectory pins the acceptance
numbers — macro-F1 >= 0.8 on the correlated-outage scenario and
per-tick engine overhead < 5%.
"""

import json
import pathlib
import sys

import pytest

_ROOT = pathlib.Path(__file__).resolve().parents[2]
_BENCH_DIR = _ROOT / "benchmarks" / "perf"
if str(_BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(_BENCH_DIR))


def newest_default_run():
    payload = json.loads((_ROOT / "BENCH_rca.json").read_text())
    runs = [r for r in payload["runs"] if r["scale"] == "default"]
    assert runs, "BENCH_rca.json has no default-scale run"
    return runs[-1]


class TestTrajectoryPins:
    """Always-on: the checked-in default-scale numbers are the
    acceptance record."""

    def test_macro_f1_at_least_080(self):
        attribution = newest_default_run()["benchmarks"]["attribution"]
        assert attribution["macro_f1"] >= 0.80
        assert attribution["n_matched"] == attribution["n_outages"]

    def test_overhead_under_5_percent(self):
        overhead = newest_default_run()["benchmarks"]["overhead"]
        assert overhead["overhead_fraction"] < 0.05

    def test_record_shape(self):
        record = newest_default_run()["benchmarks"]
        attribution = record["attribution"]
        assert attribution["n_outages"] > 0
        assert set(attribution["per_kind_f1"]) == {
            "cable", "circuit", "device", "site", "software",
        }
        assert 0.0 <= attribution["element_accuracy"] <= 1.0
        overhead = record["overhead"]
        assert overhead["bare_tick_s"] > 0
        assert overhead["rca_tick_s"] >= overhead["bare_tick_s"]
        storm = record["storm"]
        assert storm["per_anomaly_us"] > 0


@pytest.mark.perf
class TestReducedSmoke:
    @pytest.fixture(scope="class")
    def rca_record(self):
        import rca

        return rca.run("reduced")

    def test_record_shape(self, rca_record):
        assert rca_record["scale"] == "reduced"
        record = rca_record["benchmarks"]
        assert record["attribution"]["n_outages"] == 5
        assert record["overhead"]["bare_tick_s"] > 0

    def test_attribution_holds_at_reduced_scale(self, rca_record):
        """Looser than the default-scale 0.8 pin on purpose: five
        outages means one miss costs a full fifth of a kind's F1."""
        attribution = rca_record["benchmarks"]["attribution"]
        assert attribution["macro_f1"] >= 0.60
        assert attribution["n_matched"] >= attribution["n_outages"] - 1

    def test_overhead_bounded(self, rca_record):
        """Looser than the default-scale 5% pin on purpose: this is
        a smoke test on shared, possibly single-core CI hardware."""
        overhead = rca_record["benchmarks"]["overhead"]
        assert overhead["overhead_fraction"] < 0.15
