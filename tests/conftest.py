"""Shared fixtures.

The expensive fixtures (a simulated fleet trace, a fitted template
store) are session-scoped and deliberately tiny: enough structure for
every code path, small enough that the whole suite stays fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.logs.message import Severity, SyslogMessage
from repro.logs.templates import TemplateStore
from repro.synthesis import FleetSimulator, SimulationConfig
from repro.timeutil import HOUR, TRACE_START


@pytest.fixture(scope="session")
def small_config() -> SimulationConfig:
    """A 3-vPE, 2-month configuration with the update in month 1."""
    return SimulationConfig(
        n_vpes=3,
        n_months=2,
        seed=42,
        base_rate_per_hour=6.0,
        update_month=1,
        update_fraction=0.5,
        n_fleet_events=1,
    )


@pytest.fixture(scope="session")
def small_dataset(small_config):
    """A simulated trace shared by read-only tests."""
    return FleetSimulator(small_config).run()


@pytest.fixture(scope="session")
def fitted_store(small_dataset) -> TemplateStore:
    """A template store fitted on the first two weeks of normal logs."""
    messages = small_dataset.aggregate_messages(
        start=small_dataset.start,
        end=small_dataset.start + 14 * 24 * HOUR,
        normal_only=True,
    )
    return TemplateStore().fit(messages[:8000])


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


def make_message(
    timestamp: float = TRACE_START,
    host: str = "vpe00",
    process: str = "rpd",
    text: str = "BGP_KEEPALIVE: keepalive received from peer 10.0.0.1",
    severity: Severity = Severity.INFO,
) -> SyslogMessage:
    """Convenience constructor used across test modules."""
    return SyslogMessage(
        timestamp=timestamp,
        host=host,
        process=process,
        text=text,
        severity=severity,
    )
