"""Tests for repro.features.counts."""

import numpy as np
import pytest

from repro.features.counts import (
    distribution_matrix,
    sliding_distributions,
    template_distribution,
)
from repro.timeutil import DAY, TRACE_START
from tests.conftest import make_message


def annotated(template_id, offset=0.0):
    return make_message(
        timestamp=TRACE_START + offset
    ).with_template(template_id)


class TestTemplateDistribution:
    def test_normalized(self):
        messages = [annotated(1), annotated(1), annotated(2)]
        dist = template_distribution(messages, vocabulary_size=4)
        assert dist.sum() == pytest.approx(1.0)
        assert dist[1] == pytest.approx(2 / 3)
        assert dist[2] == pytest.approx(1 / 3)

    def test_empty_gives_zeros(self):
        dist = template_distribution([], vocabulary_size=3)
        assert not dist.any()

    def test_unannotated_rejected(self):
        with pytest.raises(ValueError):
            template_distribution([make_message()], vocabulary_size=3)

    def test_out_of_vocab_rejected(self):
        with pytest.raises(ValueError):
            template_distribution([annotated(9)], vocabulary_size=3)


class TestSlidingDistributions:
    def test_window_alignment(self):
        messages = [
            annotated(1, offset=0.0),
            annotated(2, offset=DAY * 1.5),
            annotated(2, offset=DAY * 2.5),
        ]
        windows = sliding_distributions(
            messages, vocabulary_size=3, window=DAY, step=DAY,
            start=TRACE_START, end=TRACE_START + 3 * DAY,
        )
        assert len(windows) == 3
        assert windows[0][1][1] == pytest.approx(1.0)
        assert windows[1][1][2] == pytest.approx(1.0)
        assert windows[2][1][2] == pytest.approx(1.0)

    def test_empty_window_zero_vector(self):
        messages = [annotated(1, offset=0.0)]
        windows = sliding_distributions(
            messages, vocabulary_size=2, window=DAY, step=DAY,
            start=TRACE_START, end=TRACE_START + 2 * DAY,
        )
        assert len(windows) == 2
        assert not windows[1][1].any()

    def test_no_messages(self):
        assert sliding_distributions([], vocabulary_size=2) == []


class TestDistributionMatrix:
    def test_rows_per_entity(self):
        per_entity = [
            [annotated(1)],
            [annotated(2), annotated(2)],
        ]
        matrix = distribution_matrix(per_entity, vocabulary_size=3)
        assert matrix.shape == (2, 3)
        assert matrix[0, 1] == pytest.approx(1.0)
        assert matrix[1, 2] == pytest.approx(1.0)
