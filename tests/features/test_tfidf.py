"""Tests for repro.features.tfidf."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.features.tfidf import TfidfVectorizer, window_documents


class TestTfidfVectorizer:
    def test_vectors_l2_normalized(self):
        docs = [[1, 1, 2], [2, 3], [1, 3, 3]]
        vectors = TfidfVectorizer(5).fit_transform(docs)
        norms = np.linalg.norm(vectors, axis=1)
        assert np.allclose(norms, 1.0)

    def test_rare_term_weighted_higher(self):
        # term 1 appears in every doc, term 2 in one
        docs = [[1, 2], [1], [1], [1]]
        vectors = TfidfVectorizer(4).fit_transform(docs)
        assert vectors[0, 2] > vectors[0, 1]

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TfidfVectorizer(3).transform([[0]])

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            TfidfVectorizer(3).fit([])

    def test_out_of_vocab_term_raises(self):
        with pytest.raises(ValueError):
            TfidfVectorizer(3).fit([[5]])

    def test_empty_document_zero_vector(self):
        vectorizer = TfidfVectorizer(3).fit([[1], [2]])
        vectors = vectorizer.transform([[]])
        assert not vectors.any()

    def test_idf_stable_across_transform(self):
        vectorizer = TfidfVectorizer(4).fit([[1, 2], [2, 3]])
        idf_before = vectorizer.idf_.copy()
        vectorizer.transform([[1], [3]])
        assert np.array_equal(idf_before, vectorizer.idf_)

    @given(
        st.lists(
            st.lists(st.integers(0, 9), min_size=1, max_size=10),
            min_size=1,
            max_size=10,
        )
    )
    def test_output_shape_property(self, docs):
        vectors = TfidfVectorizer(10).fit_transform(docs)
        assert vectors.shape == (len(docs), 10)
        assert np.all(np.isfinite(vectors))


class TestWindowDocuments:
    def test_non_overlapping_default(self):
        docs = window_documents(list(range(10)), window=3)
        assert docs == [[0, 1, 2], [3, 4, 5], [6, 7, 8]]

    def test_overlapping_stride(self):
        docs = window_documents(list(range(6)), window=3, stride=2)
        assert docs == [[0, 1, 2], [2, 3, 4]]

    def test_short_stream(self):
        assert window_documents([1, 2], window=5) == []

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            window_documents([1], window=0)
        with pytest.raises(ValueError):
            window_documents([1], window=1, stride=0)
