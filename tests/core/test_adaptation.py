"""Tests for repro.core.adaptation (transfer learning, drift trigger)."""

import numpy as np
import pytest

from repro.core.adaptation import (
    distribution_shift,
    full_retrain,
    transfer_adapt,
    update_detected,
)
from repro.core.detector import LSTMAnomalyDetector
from repro.logs.templates import TemplateStore
from repro.timeutil import TRACE_START
from tests.conftest import make_message

OLD_TEXTS = [
    "ALPHA: phase one complete",
    "BRAVO: phase two complete",
    "CHARLIE: phase three complete",
]
NEW_TEXTS = [
    "XRAY: new subsystem heartbeat nominal",
    "YANKEE: new subsystem telemetry streamed",
    "CHARLIE: phase three complete",
]


def stream(texts, n=500, start=TRACE_START):
    return [
        make_message(timestamp=start + i * 10.0,
                     text=texts[i % len(texts)])
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def teacher():
    train = stream(OLD_TEXTS)
    store = TemplateStore().fit(train)
    detector = LSTMAnomalyDetector(
        store, vocabulary_capacity=24, window=4, hidden=(12, 12),
        id_dim=8, epochs=6, oversample_rounds=0, seed=0,
    )
    return detector.fit(train)


class TestTransferAdapt:
    def test_student_learns_new_distribution(self, teacher):
        new = stream(NEW_TEXTS, start=TRACE_START + 1e7)
        teacher_mean = float(np.mean(teacher.score(new).scores))
        student = transfer_adapt(teacher, new, epochs=6)
        student_mean = float(np.mean(student.score(new).scores))
        assert student_mean < teacher_mean - 0.3

    def test_teacher_untouched(self, teacher):
        old = stream(OLD_TEXTS, n=200)
        before = teacher.score(old).scores.copy()
        transfer_adapt(
            teacher, stream(NEW_TEXTS, start=TRACE_START + 2e7),
            epochs=2,
        )
        after = teacher.score(old).scores
        assert np.allclose(before, after)

    def test_frozen_layer_weights_preserved(self, teacher):
        student = transfer_adapt(
            teacher, stream(NEW_TEXTS, start=TRACE_START + 3e7),
            epochs=2,
        )
        teacher_weights = teacher.model.get_weights()
        student_weights = student.model.get_weights()
        assert np.allclose(
            teacher_weights["lstm1.W"], student_weights["lstm1.W"]
        )
        assert not np.allclose(
            teacher_weights["output.W"], student_weights["output.W"]
        )

    def test_student_layers_unfrozen_after(self, teacher):
        student = transfer_adapt(
            teacher, stream(NEW_TEXTS, start=TRACE_START + 4e7),
            epochs=1,
        )
        assert all(layer.trainable for layer in student.model.layers)

    def test_new_templates_mined_into_store(self, teacher):
        before = teacher.store.vocabulary_size
        # texts unseen by any other test in this module, so the shared
        # module-scoped store must grow
        fresh = ["QUEBEC: unique adaptation event",
                 "ROMEO: another unique adaptation event"]
        transfer_adapt(
            teacher, stream(fresh, start=TRACE_START + 5e7), epochs=1
        )
        assert teacher.store.vocabulary_size > before


class TestFullRetrain:
    def test_produces_working_student(self, teacher):
        new = stream(NEW_TEXTS, start=TRACE_START + 6e7)
        student = full_retrain(teacher, new)
        assert len(student.score(new)) > 0


class TestDriftTrigger:
    def _annotated(self, teacher, texts, start):
        return teacher.store.transform(stream(texts, n=200,
                                              start=start))

    def test_no_drift_high_similarity(self, teacher):
        a = self._annotated(teacher, OLD_TEXTS, TRACE_START)
        b = self._annotated(teacher, OLD_TEXTS, TRACE_START + 1e6)
        similarity = distribution_shift(
            a, b, teacher.store.vocabulary_size
        )
        assert similarity > 0.95
        assert not update_detected(
            a, b, teacher.store.vocabulary_size
        )

    def test_update_low_similarity(self, teacher):
        a = self._annotated(teacher, OLD_TEXTS, TRACE_START)
        b = self._annotated(teacher, NEW_TEXTS, TRACE_START + 1e6)
        similarity = distribution_shift(
            a, b, teacher.store.vocabulary_size
        )
        assert similarity < 0.5
        assert update_detected(a, b, teacher.store.vocabulary_size)

    def test_empty_months_no_trigger(self, teacher):
        assert not update_detected(
            [], [], teacher.store.vocabulary_size
        )
