"""Tests for repro.core.thresholds."""

import numpy as np
import pytest

from repro.core.base import ScoredStream
from repro.core.thresholds import candidate_thresholds, sweep_thresholds
from repro.tickets.ticket import RootCause, TroubleTicket
from repro.timeutil import DAY, HOUR, MINUTE


BASE = 50 * DAY


def ticket(report, vpe="vpe00", duration=HOUR):
    return TroubleTicket(
        vpe=vpe, root_cause=RootCause.CIRCUIT, report_time=report,
        repair_time=report + duration,
    )


def stream_with_anomaly_at(times_scores):
    times = np.array([t for t, _ in times_scores])
    scores = np.array([s for _, s in times_scores])
    return ScoredStream(times, scores)


class TestCandidateThresholds:
    def test_within_score_range(self):
        stream = ScoredStream(
            np.arange(100.0), np.linspace(0, 10, 100)
        )
        thresholds = candidate_thresholds({"v": stream})
        assert np.all(thresholds >= 0)
        assert np.all(thresholds <= 10)

    def test_concentrated_in_upper_tail(self):
        stream = ScoredStream(
            np.arange(1000.0), np.linspace(0, 1, 1000)
        )
        thresholds = candidate_thresholds({"v": stream}, 20)
        assert np.median(thresholds) > 0.9

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            candidate_thresholds(
                {"v": ScoredStream(np.empty(0), np.empty(0))}
            )

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            candidate_thresholds({}, 0)


class TestSweepThresholds:
    def test_precision_recall_tradeoff(self):
        """Low thresholds catch the ticket but fire false alarms;
        high thresholds miss everything."""
        t = ticket(BASE)
        # two clustered anomalies in the predictive period (score 5),
        # plus clustered noise far away (score 2)
        stream = stream_with_anomaly_at([
            (BASE - HOUR, 5.0),
            (BASE - HOUR + MINUTE, 5.0),
            (BASE - 20 * DAY, 2.0),
            (BASE - 20 * DAY + MINUTE, 2.0),
            (BASE - 10 * DAY, 1.0),
        ])
        curve = sweep_thresholds(
            {"vpe00": stream}, [t],
            thresholds=np.array([0.5, 3.0, 10.0]),
        )
        assert curve[0].precision == pytest.approx(0.5)
        assert curve[0].recall == 1.0
        assert curve[1].precision == 1.0
        assert curve[1].recall == 1.0
        assert curve[2].recall == 0.0

    def test_cluster_filter_drops_singletons(self):
        t = ticket(BASE)
        stream = stream_with_anomaly_at([
            (BASE - 20 * DAY, 5.0),  # lone false alarm
            (BASE - HOUR, 5.0),
            (BASE - HOUR + MINUTE, 5.0),
        ])
        curve = sweep_thresholds(
            {"vpe00": stream}, [t],
            thresholds=np.array([1.0]),
            cluster_min_size=2,
        )
        assert curve[0].precision == 1.0

    def test_cluster_disabled(self):
        t = ticket(BASE)
        stream = stream_with_anomaly_at([
            (BASE - 20 * DAY, 5.0),
            (BASE - HOUR, 5.0),
        ])
        curve = sweep_thresholds(
            {"vpe00": stream}, [t],
            thresholds=np.array([1.0]),
            cluster_min_size=1,
        )
        assert curve[0].precision == pytest.approx(0.5)
        assert curve[0].recall == 1.0

    def test_one_point_per_threshold(self):
        t = ticket(BASE)
        stream = stream_with_anomaly_at([(BASE - HOUR, 5.0)])
        thresholds = np.array([0.1, 0.5, 2.0, 9.0])
        curve = sweep_thresholds(
            {"vpe00": stream}, [t], thresholds=thresholds
        )
        assert [p.threshold for p in curve] == list(thresholds)
