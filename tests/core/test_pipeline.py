"""Tests for repro.core.pipeline (rolling monthly train/detect loop).

The pipeline is the most expensive component; these tests run it once
per grouping variant on the tiny session dataset and assert on the
structural properties every variant must satisfy.
"""

import numpy as np
import pytest

from repro.core.detector import LSTMAnomalyDetector
from repro.core.pipeline import PipelineConfig, RollingPipeline
from repro.timeutil import MONTH


def tiny_factory(store, seed):
    return LSTMAnomalyDetector(
        store,
        vocabulary_capacity=160,
        window=6,
        hidden=(12, 12),
        id_dim=8,
        epochs=1,
        oversample_rounds=0,
        max_train_samples=1500,
        seed=seed,
    )


@pytest.fixture(scope="module")
def pipeline_result(small_dataset):
    config = PipelineConfig(
        grouping="kmeans", k=2, adaptation=True, seed=0
    )
    return RollingPipeline(
        small_dataset, config, detector_factory=tiny_factory
    ).run(), small_dataset


class TestPipelineConfig:
    def test_invalid_grouping(self):
        with pytest.raises(ValueError):
            PipelineConfig(grouping="magic")

    def test_invalid_adaptation_days(self):
        with pytest.raises(ValueError):
            PipelineConfig(adaptation_days=0)


class TestRun:
    def test_one_result_per_test_month(self, pipeline_result):
        result, dataset = pipeline_result
        n_months = int(round((dataset.end - dataset.start) / MONTH))
        assert [m.month_index for m in result.months] == list(
            range(1, n_months)
        )

    def test_streams_cover_fleet(self, pipeline_result):
        result, dataset = pipeline_result
        for month in result.months:
            assert set(month.streams) == set(dataset.vpe_names)

    def test_stream_times_inside_month(self, pipeline_result):
        result, _ = pipeline_result
        for month in result.months:
            for stream in month.streams.values():
                if len(stream):
                    assert stream.times[0] >= month.start
                    assert stream.times[-1] < month.end

    def test_tickets_scoped_to_month(self, pipeline_result):
        result, _ = pipeline_result
        for month in result.months:
            for ticket in month.tickets:
                assert month.start <= ticket.report_time < month.end

    def test_update_month_triggers_adaptation(self, pipeline_result):
        result, dataset = pipeline_result
        update_month = int(
            round((dataset.updates[0].time - dataset.start) / MONTH)
        )
        adapted = {
            m.month_index: m.adapted_groups for m in result.months
        }
        assert adapted[update_month], (
            "the software-update month must adapt at least one group"
        )

    def test_grouping_partitions_fleet(self, pipeline_result):
        result, dataset = pipeline_result
        members = [
            vpe
            for group in result.grouping.groups.values()
            for vpe in group
        ]
        assert sorted(members) == sorted(dataset.vpe_names)


class TestEvaluationHelpers:
    def test_prc_is_nonempty_and_bounded(self, pipeline_result):
        result, _ = pipeline_result
        curve = result.prc(n_thresholds=10)
        assert curve
        for point in curve:
            assert 0.0 <= point.precision <= 1.0
            assert 0.0 <= point.recall <= 1.0

    def test_recall_monotone_in_threshold(self, pipeline_result):
        result, _ = pipeline_result
        curve = result.prc(n_thresholds=10)
        thresholds = [p.threshold for p in curve]
        recalls = [p.recall for p in curve]
        order = np.argsort(thresholds)
        sorted_recalls = np.array(recalls)[order]
        assert np.all(np.diff(sorted_recalls) <= 1e-12)

    def test_monthly_counts_and_false_alarms(self, pipeline_result):
        result, _ = pipeline_result
        threshold = result.choose_threshold()
        counts = result.monthly_counts(threshold)
        assert len(counts) == len(result.months)
        rates = result.monthly_false_alarms_per_day(threshold)
        assert all(rate >= 0 for rate in rates)

    def test_pooled_streams_concatenate(self, pipeline_result):
        result, dataset = pipeline_result
        pooled = result.pooled_streams()
        for vpe in dataset.vpe_names:
            total = sum(
                len(m.streams[vpe]) for m in result.months
            )
            assert len(pooled[vpe]) == total

    def test_month_subset_selection(self, pipeline_result):
        result, _ = pipeline_result
        subset = result.pooled_tickets(month_indices=[1])
        assert all(
            result.months[0].start
            <= t.report_time
            < result.months[0].end
            for t in subset
        )


class TestParallelWorkers:
    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            PipelineConfig(workers=0)

    def test_pooled_training_matches_serial(self, small_dataset):
        """workers>1 must reproduce the serial fit bit-for-bit.

        Each group trains from its own seed on its own streams, so the
        process pool only changes *where* the work runs.  The parent
        must also re-bind the shared template store, so that later
        ``store.extend`` calls stay visible to pooled detectors.
        """
        from repro.logs.templates import TemplateStore

        fitted = {}
        for workers in (1, 2):
            config = PipelineConfig(
                grouping="kmeans",
                k=2,
                adaptation=False,
                seed=0,
                workers=workers,
            )
            pipeline = RollingPipeline(
                small_dataset, config, detector_factory=tiny_factory
            )
            month0 = pipeline._month_bounds(0)
            store = TemplateStore().fit(
                small_dataset.aggregate_messages(
                    start=month0[0], end=month0[1], normal_only=True
                )[: config.store_fit_messages]
            )
            grouping = pipeline._build_grouping(store, month0)
            detectors = pipeline._fit_detectors(store, grouping, month0)
            fitted[workers] = (grouping, detectors, store)

        serial_grouping, serial, _ = fitted[1]
        pooled_grouping, pooled, pooled_store = fitted[2]
        assert serial_grouping.groups == pooled_grouping.groups
        assert sorted(serial) == sorted(pooled)
        for group in serial:
            assert pooled[group].store is pooled_store
            layers = zip(
                serial[group].model.layers, pooled[group].model.layers
            )
            for serial_layer, pooled_layer in layers:
                assert (
                    serial_layer.params.keys()
                    == pooled_layer.params.keys()
                )
                for key in serial_layer.params:
                    assert np.array_equal(
                        serial_layer.params[key],
                        pooled_layer.params[key],
                    ), f"group {group} layer {serial_layer.name} {key}"
