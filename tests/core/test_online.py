"""Tests for repro.core.online (streaming monitor)."""

import numpy as np
import pytest

from repro.core.detector import LSTMAnomalyDetector
from repro.core.online import OnlineMonitor, WarningSignature
from repro.logs.templates import TemplateStore
from repro.timeutil import HOUR, MINUTE, TRACE_START
from tests.conftest import make_message

TEXTS = [
    "ALPHA: phase one complete",
    "BRAVO: phase two complete",
    "CHARLIE: phase three complete",
    "DELTA: phase four complete",
]
ANOMALY_TEXT = "ZULU: catastrophic meltdown imminent now"


def cyclic_stream(n=600, start=TRACE_START, period=10.0, host="vpe00"):
    return [
        make_message(
            timestamp=start + i * period,
            host=host,
            text=TEXTS[i % len(TEXTS)],
        )
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def detector():
    train = cyclic_stream()
    store = TemplateStore().fit(train)
    model = LSTMAnomalyDetector(
        store,
        vocabulary_capacity=16,
        window=4,
        hidden=(12, 12),
        id_dim=8,
        epochs=6,
        oversample_rounds=0,
        seed=0,
    ).fit(train)
    return model


@pytest.fixture()
def threshold(detector):
    scores = detector.score(cyclic_stream(300)).scores
    return float(np.quantile(scores, 0.999)) + 0.5


class TestObserve:
    def test_quiet_on_normal_stream(self, detector, threshold):
        monitor = OnlineMonitor(detector, threshold)
        warnings = monitor.run(cyclic_stream(300))
        assert warnings == []
        assert monitor.n_observed == 300

    def test_burst_raises_exactly_one_warning(self, detector,
                                              threshold):
        monitor = OnlineMonitor(
            detector, threshold, cooldown=30 * MINUTE
        )
        stream = cyclic_stream(200)
        burst_at = 100
        for offset in range(4):
            index = burst_at + offset
            stream[index] = make_message(
                timestamp=stream[index].timestamp, text=ANOMALY_TEXT
            )
        warnings = monitor.run(stream)
        assert len(warnings) == 1
        warning = warnings[0]
        assert warning.vpe == "vpe00"
        assert warning.n_anomalies >= 2
        assert (
            stream[burst_at].timestamp
            <= warning.time
            <= stream[burst_at + 4].timestamp
        )
        assert warning.peak_score > threshold

    def test_cooldown_expires(self, detector, threshold):
        monitor = OnlineMonitor(
            detector, threshold, cooldown=10 * MINUTE
        )
        stream = cyclic_stream(1000)
        # two bursts two hours apart (period 10s -> 720 steps = 2h)
        for start in (100, 100 + 720):
            for offset in range(4):
                index = start + offset
                stream[index] = make_message(
                    timestamp=stream[index].timestamp,
                    text=ANOMALY_TEXT,
                )
        warnings = monitor.run(stream)
        assert len(warnings) == 2

    def test_singleton_anomaly_no_warning(self, detector, threshold):
        monitor = OnlineMonitor(detector, threshold,
                                cluster_min_size=2)
        stream = cyclic_stream(200)
        stream[100] = make_message(
            timestamp=stream[100].timestamp, text=ANOMALY_TEXT
        )
        assert monitor.run(stream) == []
        assert monitor.n_anomalies >= 1

    def test_devices_isolated(self, detector, threshold):
        monitor = OnlineMonitor(detector, threshold)
        a = cyclic_stream(120, host="vpe00")
        b = cyclic_stream(120, host="vpe01")
        # anomalies split across devices never cluster
        a[60] = make_message(
            timestamp=a[60].timestamp, host="vpe00",
            text=ANOMALY_TEXT,
        )
        b[60] = make_message(
            timestamp=b[60].timestamp, host="vpe01",
            text=ANOMALY_TEXT,
        )
        merged = sorted(a + b, key=lambda m: m.timestamp)
        assert monitor.run(merged) == []

    def test_out_of_order_rejected(self, detector, threshold):
        monitor = OnlineMonitor(detector, threshold)
        monitor.observe(make_message(timestamp=TRACE_START + 100))
        with pytest.raises(ValueError):
            monitor.observe(make_message(timestamp=TRACE_START))

    def test_invalid_params(self, detector, threshold):
        with pytest.raises(ValueError):
            OnlineMonitor(detector, threshold, cluster_min_size=0)
        with pytest.raises(ValueError):
            OnlineMonitor(detector, threshold, cluster_max_gap=0)


class TestOnlineOfflineConsistency:
    def test_scores_match_offline(self, detector, threshold):
        """The streaming scorer must reproduce the offline scores."""
        stream = cyclic_stream(100)
        offline = detector.score(stream)
        monitor = OnlineMonitor(detector, threshold=float("inf"))
        online_scores = []
        for message in stream:
            monitor.observe(message)
            score = monitor._devices["vpe00"].last_score
            if score is not None:
                online_scores.append(score)
        # offline skips the first `window` messages; the online path
        # scores exactly the same suffix with identical values
        assert len(online_scores) == len(offline)
        assert np.allclose(
            online_scores, offline.scores, atol=1e-9
        )

    def test_replay_matches_offline_bitwise(self, detector):
        """At float64, a replayed stream scores bitwise equal to
        ``detector.score`` — message-at-a-time and micro-batched."""
        stream = cyclic_stream(120)
        offline = detector.score(stream).scores
        one = OnlineMonitor(detector, threshold=float("inf"))
        per_message = np.concatenate(
            [
                one.scorer.observe_batch([m]).scores
                for m in stream
            ]
        )
        batched_monitor = OnlineMonitor(
            detector, threshold=float("inf")
        )
        batched = batched_monitor.scorer.observe_batch(stream).scores
        assert np.array_equal(per_message, batched, equal_nan=True)
        scored = batched[~np.isnan(batched)]
        assert np.array_equal(scored, offline)

    def test_multi_device_interleaved_bitwise(self, detector):
        """Interleaved devices, scored in ticks, must match each
        device's offline scores bitwise at float64."""
        streams = {
            host: cyclic_stream(
                80, host=host, start=TRACE_START + offset
            )
            for offset, host in enumerate(
                ["vpe00", "vpe01", "vpe02"]
            )
        }
        merged = sorted(
            (m for s in streams.values() for m in s),
            key=lambda m: m.timestamp,
        )
        monitor = OnlineMonitor(
            detector, threshold=float("inf"), tick_size=33
        )
        scores = np.concatenate(
            [
                monitor.scorer.observe_batch(merged[i:i + 33]).scores
                for i in range(0, len(merged), 33)
            ]
        )
        hosts = np.array([m.host for m in merged])
        for host, stream in streams.items():
            offline = detector.score(stream).scores
            got = scores[hosts == host]
            got = got[~np.isnan(got)]
            assert np.array_equal(got, offline), host

    def test_run_warnings_match_observe_loop(self, detector,
                                             threshold):
        """Micro-batched run() emits exactly the warnings of a
        message-at-a-time observe() loop."""
        stream = cyclic_stream(300)
        for start in (80, 200):
            for offset in range(4):
                index = start + offset
                stream[index] = make_message(
                    timestamp=stream[index].timestamp,
                    text=ANOMALY_TEXT,
                )
        loop_monitor = OnlineMonitor(
            detector, threshold, cooldown=10 * MINUTE
        )
        loop_warnings = [
            w
            for w in (loop_monitor.observe(m) for m in stream)
            if w is not None
        ]
        run_monitor = OnlineMonitor(
            detector, threshold, cooldown=10 * MINUTE
        )
        run_warnings = run_monitor.run(stream, tick_size=64)
        assert run_warnings == loop_warnings
        assert run_monitor.n_observed == loop_monitor.n_observed
        assert run_monitor.n_anomalies == loop_monitor.n_anomalies


class TestStrictOrder:
    def test_default_counts_nothing(self, detector, threshold):
        monitor = OnlineMonitor(detector, threshold)
        monitor.run(cyclic_stream(50))
        assert monitor.strict_order
        assert monitor.n_reordered == 0

    def test_drop_mode_survives_misordered(self, detector,
                                           threshold):
        monitor = OnlineMonitor(
            detector, threshold, strict_order=False
        )
        stream = cyclic_stream(60)
        stale = make_message(
            timestamp=TRACE_START, text=TEXTS[0]
        )
        dirty = stream[:30] + [stale] + stream[30:]
        monitor.run(dirty, tick_size=16)
        assert monitor.n_reordered == 1
        assert monitor.n_observed == 60  # dropped one not counted
        # dropped arrivals never reach the warning logic
        reference = OnlineMonitor(detector, threshold)
        reference.run(stream)
        assert (
            monitor._devices["vpe00"].last_score
            == reference._devices["vpe00"].last_score
        )

    def test_observe_returns_none_for_dropped(self, detector,
                                              threshold):
        monitor = OnlineMonitor(
            detector, threshold, strict_order=False
        )
        monitor.observe(make_message(timestamp=TRACE_START + 100))
        assert (
            monitor.observe(make_message(timestamp=TRACE_START))
            is None
        )
        assert monitor.n_reordered == 1


class TestStateDict:
    def test_roundtrip_warning_parity(self, detector, threshold):
        """Restore mid-incident: the warning cluster must survive."""
        normal = cyclic_stream(120)
        burst = [
            make_message(
                timestamp=TRACE_START + 1200.0 + t,
                text=ANOMALY_TEXT,
            )
            for t in (0.0, 30.0, 60.0)
        ]
        stream = sorted(normal + burst, key=lambda m: m.timestamp)
        cut = next(
            i
            for i, m in enumerate(stream)
            if m.text == ANOMALY_TEXT
        ) + 1  # split right after the first anomaly of the cluster

        straight = OnlineMonitor(detector, threshold)
        expected = straight.run(stream)

        source = OnlineMonitor(detector, threshold)
        head_warnings = source.run(stream[:cut])
        restored = OnlineMonitor(detector, threshold)
        restored.load_state_dict(source.state_dict())
        tail_warnings = restored.run(stream[cut:])

        assert head_warnings + tail_warnings == expected
        assert expected, "fixture must actually emit a warning"
        assert restored.n_observed == straight.n_observed
        assert restored.n_anomalies == straight.n_anomalies

    def test_state_is_json_safe_except_scorer_arrays(
        self, detector, threshold
    ):
        import json

        monitor = OnlineMonitor(detector, threshold)
        monitor.run(cyclic_stream(40))
        state = monitor.state_dict()
        scorer_state = state.pop("scorer")
        json.dumps(state)  # must not raise
        json.dumps(
            {
                k: v
                for k, v in scorer_state.items()
                if not isinstance(v, np.ndarray)
            }
        )

    def test_version_validated(self, detector, threshold):
        monitor = OnlineMonitor(detector, threshold)
        state = monitor.state_dict()
        state["version"] = 99
        with pytest.raises(ValueError, match="version"):
            OnlineMonitor(detector, threshold).load_state_dict(state)
