"""Tests for repro.core.baselines (autoencoder, OC-SVM, PCA)."""

import numpy as np
import pytest

from repro.core.baselines import (
    AutoencoderDetector,
    IsolationForestDetector,
    OneClassSvmDetector,
    PcaDetector,
)
from repro.logs.templates import TemplateStore
from repro.timeutil import TRACE_START
from tests.conftest import make_message

TEXTS = [
    "ALPHA: phase one complete",
    "BRAVO: phase two complete",
    "CHARLIE: phase three complete",
    "DELTA: phase four complete",
]
ANOMALY_TEXT = "ZULU: catastrophic meltdown imminent now"


def cyclic_stream(n=800, start=TRACE_START):
    return [
        make_message(timestamp=start + i * 10.0,
                     text=TEXTS[i % len(TEXTS)])
        for i in range(n)
    ]


def burst_corrupted_stream(n=800, at=400, burst=25,
                           text=ANOMALY_TEXT):
    """Anomalous templates flood one window of the stream."""
    stream = cyclic_stream(n)
    for offset in range(burst):
        index = at + offset
        stream[index] = make_message(
            timestamp=stream[index].timestamp, text=text
        )
    return stream


@pytest.fixture(scope="module")
def store():
    return TemplateStore().fit(cyclic_stream(200))


def detectors(store):
    kwargs = dict(
        vocabulary_capacity=24, window=10, stride=5, seed=0
    )
    return [
        AutoencoderDetector(store, epochs=8, **kwargs),
        OneClassSvmDetector(store, **kwargs),
        PcaDetector(store, **kwargs),
        IsolationForestDetector(store, n_trees=40, **kwargs),
    ]


class TestProtocolConformance:
    @pytest.mark.parametrize("index", [0, 1, 2, 3])
    def test_fit_score_shapes(self, store, index):
        detector = detectors(store)[index]
        detector.fit(cyclic_stream(400))
        scored = detector.score(cyclic_stream(200))
        assert len(scored) > 0
        assert np.all(np.isfinite(scored.scores))
        assert np.all(np.diff(scored.times) >= 0)

    @pytest.mark.parametrize("index", [0, 1, 2, 3])
    def test_score_before_fit_raises(self, store, index):
        with pytest.raises(RuntimeError):
            detectors(store)[index].score(cyclic_stream(100))

    @pytest.mark.parametrize("index", [0, 1, 2])
    def test_burst_scores_above_normal(self, store, index):
        detector = detectors(store)[index]
        detector.fit(cyclic_stream(600))
        corrupted = burst_corrupted_stream()
        scored = detector.score(corrupted)
        burst_window = (scored.times >= corrupted[400].timestamp) & (
            scored.times <= corrupted[424].timestamp
        )
        assert burst_window.any()
        assert (
            scored.scores[burst_window].max()
            > np.median(scored.scores[~burst_window]) + 1e-6
        )
        # the burst should be in the top tail
        threshold = np.quantile(scored.scores, 0.95)
        assert scored.scores[burst_window].max() > threshold

    @pytest.mark.parametrize("index", [0, 1, 2, 3])
    def test_update_runs(self, store, index):
        detector = detectors(store)[index]
        detector.fit(cyclic_stream(400))
        detector.update(cyclic_stream(400, start=TRACE_START + 1e6))
        assert len(detector.score(cyclic_stream(100))) > 0

    @pytest.mark.parametrize("index", [0, 1, 2, 3])
    def test_update_before_fit_fits(self, store, index):
        detector = detectors(store)[index]
        detector.update(cyclic_stream(400))
        assert len(detector.score(cyclic_stream(100))) > 0

    @pytest.mark.parametrize("index", [0, 1, 2, 3])
    def test_short_stream_empty_scores(self, store, index):
        detector = detectors(store)[index]
        detector.fit(cyclic_stream(400))
        assert len(detector.score(cyclic_stream(3))) == 0


class TestWindowedFrontEnd:
    def test_window_times_are_window_ends(self, store):
        detector = PcaDetector(
            store, vocabulary_capacity=24, window=10, stride=10
        )
        detector.fit(cyclic_stream(400))
        stream = cyclic_stream(50)
        scored = detector.score(stream)
        assert scored.times[0] == stream[9].timestamp

    def test_invalid_window(self, store):
        with pytest.raises(ValueError):
            PcaDetector(store, window=0)

    def test_fit_too_short_raises(self, store):
        detector = PcaDetector(
            store, vocabulary_capacity=24, window=50
        )
        with pytest.raises(ValueError):
            detector.fit(cyclic_stream(10))


class TestAutoencoderSpecifics:
    def test_freeze_unfreeze_encoder(self, store):
        detector = AutoencoderDetector(
            store, vocabulary_capacity=24, epochs=2
        )
        detector.fit(cyclic_stream(300))
        detector.freeze_encoder()
        frozen = [
            layer.name
            for layer in detector.model.layers
            if not layer.trainable
        ]
        assert frozen == ["encoder1", "code"]
        detector.unfreeze_encoder()
        assert all(
            layer.trainable for layer in detector.model.layers
        )


def stochastic_stream(n=800, start=TRACE_START, seed=7):
    """Random template mixture: continuous TF-IDF variety, which is
    what isolation forests need to build meaningful split ranges."""
    rng = np.random.default_rng(seed)
    weights = np.array([0.4, 0.3, 0.2, 0.1])
    choices = rng.choice(len(TEXTS), size=n, p=weights)
    return [
        make_message(timestamp=start + i * 10.0,
                     text=TEXTS[choice])
        for i, choice in enumerate(choices)
    ]


class TestIsolationForestSpecifics:
    def test_flood_of_known_template_flagged(self, store):
        """A flood of one known template (an extreme but in-support
        vector) is isolatable."""
        detector = IsolationForestDetector(
            store, n_trees=60, vocabulary_capacity=24, window=10,
            stride=5, seed=0,
        )
        detector.fit(stochastic_stream(600))
        corrupted = stochastic_stream(800, seed=9)
        for offset in range(25):
            index = 400 + offset
            corrupted[index] = make_message(
                timestamp=corrupted[index].timestamp,
                text=TEXTS[3],  # flood the rarest known template
            )
        scored = detector.score(corrupted)
        burst_window = (
            (scored.times >= corrupted[400].timestamp)
            & (scored.times <= corrupted[424].timestamp)
        )
        threshold = np.quantile(scored.scores, 0.95)
        assert scored.scores[burst_window].max() > threshold

    def test_unseen_template_blind_spot(self, store):
        """Documented limitation: isolation trees never split on a
        feature with zero spread in training, so a burst of a
        *never-seen* template is invisible to the forest — one reason
        it is not a drop-in log anomaly detector."""
        detector = IsolationForestDetector(
            store, n_trees=60, vocabulary_capacity=24, window=10,
            stride=5, seed=0,
        )
        detector.fit(cyclic_stream(600))
        corrupted = burst_corrupted_stream(text=ANOMALY_TEXT)
        scored = detector.score(corrupted)
        burst_window = (
            (scored.times >= corrupted[400].timestamp)
            & (scored.times <= corrupted[424].timestamp)
        )
        spread = scored.scores.max() - scored.scores.min()
        assert spread < 0.05  # essentially flat scores


class TestOcsvmSpecifics:
    def test_buffer_bounded(self, store):
        detector = OneClassSvmDetector(
            store, vocabulary_capacity=24, window=10, stride=1,
            buffer_windows=100, max_train_windows=500,
        )
        detector.fit(cyclic_stream(400))
        detector.update(cyclic_stream(400, start=TRACE_START + 1e6))
        assert detector._buffer.shape[0] <= 100
