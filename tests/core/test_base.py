"""Tests for repro.core.base (ScoredStream)."""

import numpy as np
import pytest

from repro.core.base import ScoredStream


class TestScoredStream:
    def test_len(self):
        stream = ScoredStream(np.arange(5.0), np.zeros(5))
        assert len(stream) == 5

    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            ScoredStream(np.arange(5.0), np.zeros(4))

    def test_one_dimensional_enforced(self):
        with pytest.raises(ValueError):
            ScoredStream(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_anomalies_strictly_above_threshold(self):
        stream = ScoredStream(
            np.array([1.0, 2.0, 3.0]), np.array([0.1, 0.5, 0.9])
        )
        assert list(stream.anomalies(0.5)) == [3.0]

    def test_concatenate_sorts_by_time(self):
        a = ScoredStream(np.array([10.0, 30.0]), np.array([1.0, 3.0]))
        b = ScoredStream(np.array([20.0]), np.array([2.0]))
        merged = ScoredStream.concatenate([a, b])
        assert list(merged.times) == [10.0, 20.0, 30.0]
        assert list(merged.scores) == [1.0, 2.0, 3.0]

    def test_concatenate_empty_list(self):
        merged = ScoredStream.concatenate([])
        assert len(merged) == 0
