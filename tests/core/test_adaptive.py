"""Tests for repro.core.online.AdaptiveTicker (backpressure sizing).

The ticker only resizes after ``hysteresis`` *consecutive* readings
beyond a watermark — one bursty tick must not thrash the size — and
always publishes the live size to the ``stream.tick_size`` gauge.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.core.detector import LSTMAnomalyDetector
from repro.core.online import AdaptiveTicker, OnlineMonitor
from repro.logs.templates import TemplateStore
from tests.core.test_online import cyclic_stream


class TestResizing:
    def test_grows_only_after_consecutive_overloads(self):
        ticker = AdaptiveTicker(initial=1024, hysteresis=3)
        assert ticker.update(4096) == 1024
        assert ticker.update(4096) == 1024
        assert ticker.update(4096) == 2048

    def test_burst_does_not_thrash(self):
        ticker = AdaptiveTicker(initial=1024, hysteresis=3)
        ticker.update(4096)
        ticker.update(4096)
        ticker.update(1024)  # mid-band reading resets the streak
        assert ticker.update(4096) == 1024
        assert ticker.update(4096) == 1024
        assert ticker.update(4096) == 2048

    def test_shrinks_after_consecutive_idle_ticks(self):
        ticker = AdaptiveTicker(initial=1024, hysteresis=2)
        assert ticker.update(0) == 1024
        assert ticker.update(0) == 512

    def test_resize_needs_a_fresh_streak(self):
        ticker = AdaptiveTicker(initial=64, hysteresis=2)
        ticker.update(100_000)
        ticker.update(100_000)
        assert ticker.size == 128
        ticker.update(100_000)
        assert ticker.size == 128
        ticker.update(100_000)
        assert ticker.size == 256

    def test_clamped_to_bounds(self):
        ticker = AdaptiveTicker(
            initial=128, min_size=64, max_size=256, hysteresis=1
        )
        assert ticker.update(10_000) == 256
        assert ticker.update(10_000) == 256  # pinned at max
        assert ticker.update(0) == 128
        assert ticker.update(0) == 64
        assert ticker.update(0) == 64  # pinned at min

    def test_publishes_tick_size_gauge(self):
        registry = telemetry.MetricsRegistry()
        with telemetry.use(registry):
            ticker = AdaptiveTicker(initial=256, hysteresis=1)
            ticker.update(0)
        assert registry.gauge("stream.tick_size").value == 128


class TestValidation:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="min_size"):
            AdaptiveTicker(min_size=0)
        with pytest.raises(ValueError, match="min_size"):
            AdaptiveTicker(initial=512, min_size=512, max_size=256)

    def test_rejects_initial_outside_bounds(self):
        with pytest.raises(ValueError, match="outside"):
            AdaptiveTicker(initial=32, min_size=64)

    def test_rejects_bad_watermarks(self):
        with pytest.raises(ValueError, match="watermark"):
            AdaptiveTicker(low_watermark=2.0, high_watermark=1.0)
        with pytest.raises(ValueError, match="watermark"):
            AdaptiveTicker(low_watermark=-0.1)

    def test_rejects_bad_hysteresis(self):
        with pytest.raises(ValueError, match="hysteresis"):
            AdaptiveTicker(hysteresis=0)

    def test_rejects_negative_backlog(self):
        with pytest.raises(ValueError, match="negative backlog"):
            AdaptiveTicker().update(-1)


@pytest.fixture(scope="module")
def detector():
    train = cyclic_stream()
    store = TemplateStore().fit(train)
    return LSTMAnomalyDetector(
        store,
        vocabulary_capacity=16,
        window=4,
        hidden=(12, 12),
        id_dim=8,
        epochs=2,
        oversample_rounds=0,
        seed=0,
    ).fit(train)


class TestMonitorIntegration:
    def test_adaptive_run_scores_identically_to_fixed(self, detector):
        """Tick boundaries must not change scores (bitwise parity)."""
        stream = cyclic_stream(500)
        fixed = OnlineMonitor(detector, threshold=float("inf"))
        fixed.run(stream, tick_size=97)
        adaptive = OnlineMonitor(detector, threshold=float("inf"))
        adaptive.run(
            stream,
            ticker=AdaptiveTicker(
                initial=64, min_size=16, max_size=256, hysteresis=1
            ),
        )
        assert adaptive.n_observed == fixed.n_observed == 500
        assert np.array_equal(
            np.asarray(adaptive.scorer.state_dict()["fill"]),
            np.asarray(fixed.scorer.state_dict()["fill"]),
        )

    def test_adaptive_run_consumes_every_message(self, detector):
        stream = cyclic_stream(333)
        monitor = OnlineMonitor(detector, threshold=float("inf"))
        ticker = AdaptiveTicker(
            initial=16, min_size=16, max_size=64, hysteresis=1
        )
        monitor.run(stream, ticker=ticker)
        assert monitor.n_observed == 333
        assert ticker.size == 16  # backlog hit zero: shrunk to floor
