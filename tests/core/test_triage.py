"""Tests for repro.core.triage (section 5.3 scenario categorization)."""

import numpy as np
import pytest

from repro.core.mapping import map_anomalies
from repro.core.triage import TriageScenario, triage
from repro.logs.templates import TemplateStore
from repro.tickets.ticket import RootCause, TroubleTicket
from repro.timeutil import DAY, HOUR, MINUTE
from tests.conftest import make_message

BASE = 200 * DAY

PREDICTIVE_TEXT = (
    "CHASSISD_IPC: invalid response from peer chassis-control "
    "connection 3"
)
STORM_TEXT = "BGP_UNUSABLE_ASPATH: bgp reject path from peer 10.0.0.1"
NOISE_TEXT = "SNMP_AUTH_FAIL: authentication failure from 10.9.9.9"
FILLER_TEXT = "NTP_SYNC: clock synchronized to 10.1.1.1 offset 5 ms"


def build_world():
    """One vPE with three conditions: a predictive storm 30 min before
    a ticket, an in-ticket storm, and an unrelated noise cluster."""
    ticket = TroubleTicket(
        vpe="vpe00",
        root_cause=RootCause.HARDWARE,
        report_time=BASE,
        repair_time=BASE + 2 * HOUR,
    )
    messages = []
    anomaly_times = []
    # predictive condition: 30 minutes before the report
    for offset in range(3):
        t = BASE - 30 * MINUTE + offset * 20
        messages.append(make_message(timestamp=t,
                                     text=PREDICTIVE_TEXT))
        anomaly_times.append(t)
    # in-ticket condition
    for offset in range(3):
        t = BASE + 10 * MINUTE + offset * 20
        messages.append(make_message(timestamp=t, text=STORM_TEXT))
        anomaly_times.append(t)
    # coincidental condition, far away from any ticket
    for offset in range(3):
        t = BASE - 20 * DAY + offset * 20
        messages.append(make_message(timestamp=t, text=NOISE_TEXT))
        anomaly_times.append(t)
    # filler so the store has normal templates too
    messages.extend(
        make_message(timestamp=BASE - 40 * DAY + i * 60,
                     text=FILLER_TEXT)
        for i in range(5)
    )
    messages.sort(key=lambda m: m.timestamp)
    store = TemplateStore().fit(messages)
    mapping = map_anomalies(
        {"vpe00": np.asarray(sorted(anomaly_times))}, [ticket]
    )
    return mapping, {"vpe00": messages}, store


class TestTriage:
    def test_scenarios_assigned(self):
        mapping, messages, store = build_world()
        findings = triage(mapping, messages, store)
        by_scenario = {f.scenario for f in findings}
        assert TriageScenario.PREDICTIVE_SIGNAL in by_scenario
        assert TriageScenario.TICKETING_FLOW_EVENT in by_scenario
        assert TriageScenario.COINCIDENTAL in by_scenario

    def test_predictive_condition_named_correctly(self):
        mapping, messages, store = build_world()
        findings = triage(mapping, messages, store)
        predictive = [
            f for f in findings
            if f.scenario is TriageScenario.PREDICTIVE_SIGNAL
        ]
        assert len(predictive) == 1
        assert "chassis-control" in predictive[0].condition
        assert predictive[0].median_lead == pytest.approx(
            30 * MINUTE - 20, abs=60
        )
        assert predictive[0].tickets_involved == 1

    def test_coincidental_has_no_lead(self):
        mapping, messages, store = build_world()
        findings = triage(mapping, messages, store)
        coincidental = [
            f for f in findings
            if f.scenario is TriageScenario.COINCIDENTAL
        ]
        assert len(coincidental) == 1
        assert coincidental[0].median_lead is None
        assert "SNMP_AUTH_FAIL" in coincidental[0].condition

    def test_ordering_predictive_first(self):
        mapping, messages, store = build_world()
        findings = triage(mapping, messages, store)
        assert findings[0].scenario is TriageScenario.PREDICTIVE_SIGNAL
        assert findings[-1].scenario is TriageScenario.COINCIDENTAL

    def test_short_lead_is_early_detection_not_predictive(self):
        ticket = TroubleTicket(
            vpe="vpe00",
            root_cause=RootCause.CIRCUIT,
            report_time=BASE,
            repair_time=BASE + HOUR,
        )
        messages = [
            make_message(timestamp=BASE - 2 * MINUTE + i * 10,
                         text=STORM_TEXT)
            for i in range(4)
        ]
        store = TemplateStore().fit(messages)
        mapping = map_anomalies(
            {"vpe00": np.asarray(
                [m.timestamp for m in messages]
            )},
            [ticket],
        )
        findings = triage(mapping, {"vpe00": messages}, store)
        assert findings[0].scenario is (
            TriageScenario.EARLY_DETECTION_SIGNATURE
        )

    def test_empty_mapping(self):
        mapping = map_anomalies({}, [])
        store = TemplateStore().fit([make_message(text=FILLER_TEXT)])
        assert triage(mapping, {}, store) == []
