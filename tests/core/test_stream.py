"""Tests for repro.core.stream (the vectorized streaming engine)."""

import numpy as np
import pytest

from repro.core.base import clamp_template_ids
from repro.core.detector import LSTMAnomalyDetector
from repro.core.stream import StreamScorer
from repro.logs.sequences import N_GAP_BUCKETS, gap_bucket
from repro.logs.templates import TemplateStore
from repro.timeutil import TRACE_START
from tests.conftest import make_message

TEXTS = [
    "ALPHA: phase one complete",
    "BRAVO: phase two complete",
    "CHARLIE: phase three complete",
    "DELTA: phase four complete",
]

WINDOW = 4


def cyclic_stream(n, host="vpe00", start=TRACE_START, period=10.0,
                  phase=0):
    return [
        make_message(
            timestamp=start + i * period,
            host=host,
            text=TEXTS[(i + phase) % len(TEXTS)],
        )
        for i in range(n)
    ]


def build_detector():
    train = cyclic_stream(600)
    store = TemplateStore().fit(train)
    return LSTMAnomalyDetector(
        store,
        vocabulary_capacity=16,
        window=WINDOW,
        hidden=(12, 12),
        id_dim=8,
        epochs=2,
        oversample_rounds=0,
        seed=0,
    ).fit(train)


@pytest.fixture(scope="module")
def detector():
    return build_detector()


def interleaved_streams(n_devices, per_device=60):
    """Per-device cyclic streams merged into one time-sorted stream."""
    streams = {
        f"vpe{d:02d}": cyclic_stream(
            per_device,
            host=f"vpe{d:02d}",
            start=TRACE_START + 0.5 * d,
            phase=d,
        )
        for d in range(n_devices)
    }
    merged = sorted(
        (m for s in streams.values() for m in s),
        key=lambda m: m.timestamp,
    )
    return streams, merged


class TestRingBuffer:
    def test_warmup_then_scores(self, detector):
        scorer = StreamScorer(detector)
        stream = cyclic_stream(WINDOW + 3)
        result = scorer.observe_batch(stream)
        assert np.isnan(result.scores[:WINDOW]).all()
        assert not np.isnan(result.scores[WINDOW:]).any()
        assert scorer.n_scored == 3

    def test_context_matches_reference(self, detector):
        """After wraparound the ring holds the last `window` tuples."""
        scorer = StreamScorer(detector)
        stream = cyclic_stream(11)  # > 2 * window: full wraparound
        scorer.observe_batch(stream)
        ids = detector.store.match_ids(stream)
        clamp_template_ids(ids, detector.vocabulary_capacity)
        expected = []
        for i in range(len(stream) - WINDOW, len(stream)):
            gap = (
                N_GAP_BUCKETS - 1
                if i == 0
                else gap_bucket(
                    stream[i].timestamp - stream[i - 1].timestamp
                )
            )
            expected.append((ids[i], gap))
        assert np.array_equal(
            scorer.context_of("vpe00"), np.array(expected)
        )

    def test_partial_context_visible(self, detector):
        scorer = StreamScorer(detector)
        scorer.observe_batch(cyclic_stream(2))
        context = scorer.context_of("vpe00")
        assert context.shape == (2, 2)
        # first-ever message gets the largest gap bucket
        assert context[0, 1] == N_GAP_BUCKETS - 1

    def test_device_table_grows(self, detector):
        scorer = StreamScorer(detector, initial_devices=1)
        _, merged = interleaved_streams(7, per_device=8)
        scorer.observe_batch(merged)
        assert scorer.n_devices == 7
        assert scorer._contexts.shape[0] >= 7

    def test_empty_batch(self, detector):
        scorer = StreamScorer(detector)
        result = scorer.observe_batch([])
        assert result.scores.shape == (0,)
        assert result.kept.shape == (0,)


class TestBitwiseParity:
    """Micro-batched scores == per-message scores == offline scores.

    All comparisons are bitwise at the float64 default: batching must
    not change a single bit of any score.
    """

    def test_single_device_all_paths(self, detector):
        stream = cyclic_stream(150)
        offline = detector.score(stream).scores

        per_message = StreamScorer(detector)
        one_at_a_time = np.concatenate(
            [per_message.observe_batch([m]).scores for m in stream]
        )
        batched = StreamScorer(detector).observe_batch(stream).scores

        assert np.array_equal(
            one_at_a_time, batched, equal_nan=True
        )
        scored = batched[~np.isnan(batched)]
        assert scored.shape == offline.shape
        assert np.array_equal(scored, offline)

    @pytest.mark.parametrize("tick", [1, 7, 64, 1000])
    def test_multi_device_interleaved(self, detector, tick):
        streams, merged = interleaved_streams(5, per_device=40)
        scorer = StreamScorer(detector)
        scores = np.concatenate(
            [
                scorer.observe_batch(merged[i:i + tick]).scores
                for i in range(0, len(merged), tick)
            ]
        )
        hosts = np.array([m.host for m in merged])
        for host, stream in streams.items():
            offline = detector.score(stream).scores
            device_scores = scores[hosts == host]
            device_scores = device_scores[~np.isnan(device_scores)]
            assert np.array_equal(device_scores, offline), host


class TestOrdering:
    def test_strict_raises_before_mutation(self, detector):
        scorer = StreamScorer(detector)
        scorer.observe_batch(cyclic_stream(6))
        before = scorer.context_of("vpe00").copy()
        bad = cyclic_stream(3, start=TRACE_START)  # goes backwards
        with pytest.raises(ValueError, match="out-of-order"):
            scorer.observe_batch(bad)
        # the failed tick touched nothing
        assert np.array_equal(scorer.context_of("vpe00"), before)
        assert scorer.n_reordered == 0

    def test_drop_mode_counts_and_preserves_scores(self, detector):
        clean = cyclic_stream(40)
        # Inject stale duplicates (old timestamps) mid-stream.
        stale = [
            make_message(timestamp=TRACE_START, text=TEXTS[0]),
            make_message(timestamp=TRACE_START + 5.0, text=TEXTS[1]),
        ]
        dirty = clean[:20] + stale + clean[20:]
        scorer = StreamScorer(detector, strict_order=False)
        result = scorer.observe_batch(dirty)
        assert scorer.n_reordered == 2
        assert not result.kept[20] and not result.kept[21]
        assert np.isnan(result.scores[20:22]).all()
        # kept arrivals score exactly as if the stale ones never came
        reference = (
            StreamScorer(detector).observe_batch(clean).scores
        )
        kept_scores = result.scores[result.kept]
        assert np.array_equal(
            kept_scores, reference, equal_nan=True
        )

    def test_equal_timestamps_accepted(self, detector):
        scorer = StreamScorer(detector, strict_order=True)
        messages = [
            make_message(timestamp=TRACE_START, text=TEXTS[0]),
            make_message(timestamp=TRACE_START, text=TEXTS[1]),
        ]
        result = scorer.observe_batch(messages)
        assert result.kept.all()
        assert scorer.n_reordered == 0


class TestUnknownTemplateClamp:
    def test_ids_beyond_capacity_fold_to_unknown(self):
        """A store that grew past the model's capacity must score
        through the unknown id on both the offline and streaming
        paths — identically."""
        detector = build_detector()  # private store: it gets mutated
        store = detector.store
        # Distinct alphabetic keywords: digit-bearing tokens would be
        # collapsed as template variables and mine into one template.
        words = [
            "QU" + chr(ord("A") + a) + chr(ord("A") + b)
            for a in range(6)
            for b in range(5)
        ]
        novel = [
            make_message(
                timestamp=TRACE_START + j,
                text=f"{word}: {word} subsystem failure detected",
            )
            for j, word in enumerate(words)
        ]
        store.extend(novel)
        assert store.vocabulary_size > detector.vocabulary_capacity
        stream = cyclic_stream(20) + [
            make_message(
                timestamp=TRACE_START + 20 * 10.0,
                text=f"{words[-1]}: {words[-1]} subsystem failure "
                "detected",
            )
        ]
        matched = store.match_ids(stream)
        assert matched.max() >= detector.vocabulary_capacity
        offline = detector.score(stream).scores
        streamed = StreamScorer(detector).observe_batch(stream).scores
        assert np.array_equal(
            streamed[~np.isnan(streamed)], offline
        )

    def test_clamp_helper_in_place(self):
        ids = np.array([0, 3, 15, 16, 250])
        out = clamp_template_ids(ids, 16)
        assert out is ids
        assert np.array_equal(ids, [0, 3, 15, 0, 0])


class TestStateDict:
    def test_roundtrip_continuation_is_bitwise(self, detector):
        _, merged = interleaved_streams(3, per_device=40)
        head, tail = merged[:60], merged[60:]

        straight = StreamScorer(detector)
        straight.observe_batch(head)
        expected = straight.observe_batch(tail)

        source = StreamScorer(detector)
        source.observe_batch(head)
        restored = StreamScorer(detector)
        restored.load_state_dict(source.state_dict())
        got = restored.observe_batch(tail)

        assert np.array_equal(
            expected.scores, got.scores, equal_nan=True
        )
        assert np.array_equal(expected.kept, got.kept)
        assert restored.n_scored == straight.n_scored

    def test_snapshot_is_immune_to_later_ingest(self, detector):
        scorer = StreamScorer(detector)
        scorer.observe_batch(cyclic_stream(10))
        state = scorer.state_dict()
        fills_before = state["fill"].copy()
        scorer.observe_batch(
            cyclic_stream(10, start=TRACE_START + 1000.0)
        )
        assert np.array_equal(state["fill"], fills_before)

    def test_strict_order_restored(self, detector):
        lax = StreamScorer(detector, strict_order=False)
        lax.observe_batch(cyclic_stream(6))
        restored = StreamScorer(detector, strict_order=True)
        restored.load_state_dict(lax.state_dict())
        assert restored.strict_order is False

    def test_version_and_window_validated(self, detector):
        scorer = StreamScorer(detector)
        state = scorer.state_dict()
        bad = dict(state, version=99)
        with pytest.raises(ValueError, match="version"):
            StreamScorer(detector).load_state_dict(bad)
        bad = dict(state, window=WINDOW + 1)
        with pytest.raises(ValueError, match="window"):
            StreamScorer(detector).load_state_dict(bad)

    def test_shape_mismatch_rejected(self, detector):
        scorer = StreamScorer(detector)
        scorer.observe_batch(cyclic_stream(6))
        state = scorer.state_dict()
        state["contexts"] = state["contexts"][:, :2, :]
        with pytest.raises(ValueError, match="shape"):
            StreamScorer(detector).load_state_dict(state)
