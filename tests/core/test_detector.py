"""Tests for repro.core.detector (the LSTM anomaly detector).

These tests train tiny models on a synthetic-but-structured stream: a
cyclic template pattern the LSTM can learn quickly, with injected rare
templates serving as anomalies.
"""

import numpy as np
import pytest

from repro.core.detector import (
    LAYER_NAMES,
    LSTMAnomalyDetector,
    LOWER_LAYERS,
    TOP_LAYERS,
)
from repro.logs.templates import TemplateStore
from repro.timeutil import TRACE_START
from tests.conftest import make_message


TEXTS = [
    "ALPHA: phase one complete",
    "BRAVO: phase two complete",
    "CHARLIE: phase three complete",
    "DELTA: phase four complete",
]
ANOMALY_TEXT = "ZULU: catastrophic meltdown imminent now"


def cyclic_stream(n=600, start=TRACE_START, period=10.0):
    """A perfectly periodic template cycle — trivially learnable."""
    return [
        make_message(
            timestamp=start + i * period, text=TEXTS[i % len(TEXTS)]
        )
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def trained_detector():
    train = cyclic_stream()
    store = TemplateStore().fit(train)
    detector = LSTMAnomalyDetector(
        store,
        vocabulary_capacity=16,
        window=4,
        hidden=(12, 12),
        id_dim=8,
        epochs=30,
        learning_rate=0.01,
        batch_size=32,
        oversample_rounds=1,
        max_train_samples=2000,
        seed=0,
    )
    detector.fit(train)
    return detector


class TestConstruction:
    def test_capacity_must_cover_store(self):
        store = TemplateStore().fit(cyclic_stream(50))
        with pytest.raises(ValueError):
            LSTMAnomalyDetector(store, vocabulary_capacity=2)

    def test_layer_names_partition(self):
        assert set(LOWER_LAYERS) | set(TOP_LAYERS) == set(LAYER_NAMES)
        assert not set(LOWER_LAYERS) & set(TOP_LAYERS)

    def test_score_before_fit(self):
        store = TemplateStore().fit(cyclic_stream(50))
        detector = LSTMAnomalyDetector(store, vocabulary_capacity=16)
        with pytest.raises(RuntimeError):
            detector.score(cyclic_stream(50))

    def test_gru_cell_variant(self):
        train = cyclic_stream(400)
        store = TemplateStore().fit(train)
        detector = LSTMAnomalyDetector(
            store, vocabulary_capacity=16, window=4, hidden=(12, 12),
            id_dim=8, epochs=10, learning_rate=0.01,
            oversample_rounds=0, cell="gru", seed=0,
        ).fit(train)
        scores = detector.score(cyclic_stream(100)).scores
        assert np.median(scores) < 1.0  # learned the cycle

    def test_unknown_cell_rejected(self):
        store = TemplateStore().fit(cyclic_stream(50))
        with pytest.raises(ValueError):
            LSTMAnomalyDetector(
                store, vocabulary_capacity=16, cell="rnn"
            )

    def test_fit_on_too_few_messages(self):
        store = TemplateStore().fit(cyclic_stream(50))
        detector = LSTMAnomalyDetector(
            store, vocabulary_capacity=16, window=10
        )
        with pytest.raises(ValueError):
            detector.fit(cyclic_stream(5))


class TestDetection:
    def test_scores_align_with_stream(self, trained_detector):
        stream = cyclic_stream(100)
        scored = trained_detector.score(stream)
        # first `window` messages lack context
        assert len(scored) == 100 - 4
        assert list(scored.times) == [
            m.timestamp for m in stream[4:]
        ]

    def test_anomalous_template_scores_higher(self, trained_detector):
        normal = cyclic_stream(100)
        corrupted = list(normal)
        corrupted[50] = make_message(
            timestamp=normal[50].timestamp, text=ANOMALY_TEXT
        )
        normal_scores = trained_detector.score(normal)
        corrupted_scores = trained_detector.score(corrupted)
        anomaly_index = 50 - 4
        anomaly_score = corrupted_scores.scores[anomaly_index]
        typical = np.median(normal_scores.scores)
        assert anomaly_score > typical + 2.0

    def test_normal_stream_mostly_low_scores(self, trained_detector):
        scored = trained_detector.score(cyclic_stream(200))
        threshold = np.median(scored.scores) + 2.0
        assert (scored.scores > threshold).mean() < 0.05

    def test_detect_uses_threshold(self, trained_detector):
        normal = cyclic_stream(100)
        corrupted = list(normal)
        corrupted[60] = make_message(
            timestamp=normal[60].timestamp, text=ANOMALY_TEXT
        )
        threshold = float(
            np.quantile(
                trained_detector.score(normal).scores, 0.999
            )
        ) + 0.5
        hits = trained_detector.detect(corrupted, threshold)
        assert normal[60].timestamp in hits

    def test_empty_stream(self, trained_detector):
        scored = trained_detector.score([])
        assert len(scored) == 0


class TestUpdateAndClone:
    def test_update_improves_on_new_pattern(self):
        train = cyclic_stream(400)
        store = TemplateStore().fit(train)
        detector = LSTMAnomalyDetector(
            store, vocabulary_capacity=16, window=4, hidden=(12, 12),
            id_dim=8, epochs=4, oversample_rounds=0, seed=1,
        )
        detector.fit(train)
        # a new, different cycle (reversed order)
        new = [
            make_message(
                timestamp=TRACE_START + 1e6 + i * 10.0,
                text=TEXTS[::-1][i % 4],
            )
            for i in range(400)
        ]
        before = float(np.mean(detector.score(new).scores))
        detector.update_epochs = 4
        for _ in range(3):
            detector.update(new)
        after = float(np.mean(detector.score(new).scores))
        assert after < before

    def test_update_before_fit_fits(self):
        train = cyclic_stream(300)
        store = TemplateStore().fit(train)
        detector = LSTMAnomalyDetector(
            store, vocabulary_capacity=16, window=4, hidden=(8, 8),
            id_dim=6, epochs=2, oversample_rounds=0,
        )
        detector.update(train)
        assert detector.score(train) is not None

    def test_clone_preserves_scores_and_isolates(self,
                                                 trained_detector):
        stream = cyclic_stream(80)
        twin = trained_detector.clone()
        assert np.allclose(
            twin.score(stream).scores,
            trained_detector.score(stream).scores,
        )
        twin.update_epochs = 3
        twin.update(cyclic_stream(300))
        # teacher unchanged by student training
        assert not np.allclose(
            twin.score(stream).scores,
            trained_detector.score(stream).scores,
        )


class TestFitStreams:
    def _two_device_streams(self):
        """Two devices running the SAME cycle but phase-shifted, so a
        time-merged union interleaves them destructively."""
        a = cyclic_stream(300)
        b = [
            make_message(
                timestamp=TRACE_START + 3.0 + i * 10.0,
                host="vpe01",
                text=TEXTS[(i + 2) % len(TEXTS)],
            )
            for i in range(300)
        ]
        return a, b

    def _build(self, seed=0):
        a, b = self._two_device_streams()
        store = TemplateStore().fit(a + b)
        detector = LSTMAnomalyDetector(
            store, vocabulary_capacity=16, window=4,
            hidden=(12, 12), id_dim=8, epochs=20,
            learning_rate=0.01, batch_size=32,
            oversample_rounds=0, seed=seed,
        )
        return detector, a, b

    def test_per_stream_training_preserves_sequences(self):
        """Pooling windows per device must model each device's cycle
        far better than windowing the interleaved union."""
        detector, a, b = self._build()
        detector.fit_streams([a, b])
        per_stream_nll = float(
            np.mean(detector.score(cyclic_stream(100)).scores)
        )

        interleaved, _, _ = self._build(seed=0)[0], None, None
        merged = sorted(a + b, key=lambda m: m.timestamp)
        interleaved.fit(merged)
        interleaved_nll = float(
            np.mean(interleaved.score(cyclic_stream(100)).scores)
        )
        assert per_stream_nll < interleaved_nll - 0.3

    def test_empty_streams_rejected(self):
        detector, a, b = self._build()
        with pytest.raises(ValueError):
            detector.fit_streams([[], []])

    def test_update_streams_runs(self):
        detector, a, b = self._build()
        detector.fit_streams([a, b])
        detector.update_streams([a[:100], b[:100]])
        assert len(detector.score(a[:50])) > 0


class TestPersistence:
    def test_save_restore_roundtrip(self, trained_detector, tmp_path):
        path = str(tmp_path / "weights.npz")
        trained_detector.save_weights(path)
        stream = cyclic_stream(80)
        fresh = LSTMAnomalyDetector(
            trained_detector.store,
            vocabulary_capacity=16,
            window=4,
            hidden=(12, 12),
            id_dim=8,
            seed=99,
        )
        with pytest.raises(RuntimeError):
            fresh.score(stream)
        fresh.restore_weights(path)
        assert np.allclose(
            fresh.score(stream).scores,
            trained_detector.score(stream).scores,
        )


class TestTopKScoring:
    def test_rank_scores_shape_and_range(self, trained_detector):
        stream = cyclic_stream(100)
        ranks = trained_detector.score_topk(stream)
        assert len(ranks) == 100 - 4
        assert np.all(ranks.scores >= 0)
        assert np.all(
            ranks.scores < trained_detector.vocabulary_capacity
        )

    def test_predictable_stream_rank_zero(self, trained_detector):
        """On a learned deterministic cycle, the observed template is
        the model's top prediction almost always."""
        ranks = trained_detector.score_topk(cyclic_stream(200))
        assert np.median(ranks.scores) == 0.0
        assert (ranks.scores == 0).mean() > 0.8

    def test_anomaly_gets_high_rank(self, trained_detector):
        stream = cyclic_stream(100)
        corrupted = list(stream)
        corrupted[50] = make_message(
            timestamp=stream[50].timestamp, text=ANOMALY_TEXT
        )
        ranks = trained_detector.score_topk(corrupted)
        assert ranks.scores[50 - 4] >= 3

    def test_topk_rule_consistent_with_thresholding(
        self, trained_detector
    ):
        """Thresholding ranks at k-0.5 realizes 'not in top k'."""
        stream = cyclic_stream(100)
        ranks = trained_detector.score_topk(stream)
        k = 3
        flagged = ranks.anomalies(k - 0.5)
        assert set(flagged) == set(
            ranks.times[ranks.scores >= k]
        )

    def test_score_topk_before_fit(self):
        store = TemplateStore().fit(cyclic_stream(50))
        detector = LSTMAnomalyDetector(store, vocabulary_capacity=16)
        with pytest.raises(RuntimeError):
            detector.score_topk(cyclic_stream(50))


class TestOversampling:
    def test_oversampling_reduces_training_fp_tail(self):
        """The over-sampling loop should not hurt, and typically
        tightens, the lower tail of training log-likelihoods."""
        rng = np.random.default_rng(5)
        # cycle with a rare-but-normal minority pattern
        stream = []
        for i in range(800):
            text = TEXTS[i % 4]
            if rng.random() < 0.03:
                text = "ECHO: rare but perfectly normal event"
            stream.append(
                make_message(timestamp=TRACE_START + i * 10.0,
                             text=text)
            )
        store = TemplateStore().fit(stream)

        def build(rounds):
            return LSTMAnomalyDetector(
                store, vocabulary_capacity=16, window=4,
                hidden=(12, 12), id_dim=8, epochs=4,
                oversample_rounds=rounds, seed=3,
            ).fit(stream)

        plain = build(0)
        boosted = build(3)
        q = 0.02
        plain_tail = np.quantile(plain.score(stream).scores, 1 - q)
        boosted_tail = np.quantile(boosted.score(stream).scores, 1 - q)
        assert boosted_tail <= plain_tail * 1.25
