"""Tests for repro.core.mapping."""

import numpy as np
import pytest

from repro.core.mapping import (
    AnomalyKind,
    FIGURE8_OFFSETS_MINUTES,
    detection_rate_by_offset,
    map_anomalies,
    warning_clusters,
)
from repro.tickets.ticket import RootCause, TroubleTicket
from repro.timeutil import DAY, HOUR, MINUTE


BASE = 100 * DAY


def ticket(report=BASE, duration=2 * HOUR, vpe="vpe00",
           cause=RootCause.CIRCUIT, **kwargs):
    return TroubleTicket(
        vpe=vpe, root_cause=cause, report_time=report,
        repair_time=report + duration, **kwargs,
    )


class TestMapAnomalies:
    def test_early_warning(self):
        t = ticket()
        result = map_anomalies(
            {"vpe00": np.array([BASE - 2 * HOUR])}, [t],
            predictive_period=DAY,
        )
        (record,) = result.records
        assert record.kind is AnomalyKind.EARLY_WARNING
        assert record.ticket.ticket_id == t.ticket_id
        assert record.lead_time == pytest.approx(2 * HOUR)

    def test_error_in_infected_period(self):
        result = map_anomalies(
            {"vpe00": np.array([BASE + HOUR])}, [ticket()]
        )
        assert result.records[0].kind is AnomalyKind.ERROR

    def test_false_alarm_outside_periods(self):
        result = map_anomalies(
            {"vpe00": np.array([BASE - 10 * DAY])}, [ticket()]
        )
        record = result.records[0]
        assert record.kind is AnomalyKind.FALSE_ALARM
        assert record.ticket is None

    def test_wrong_vpe_is_false_alarm(self):
        result = map_anomalies(
            {"vpe99": np.array([BASE + HOUR])}, [ticket(vpe="vpe00")]
        )
        assert result.records[0].kind is AnomalyKind.FALSE_ALARM

    def test_predictive_period_boundary(self):
        result = map_anomalies(
            {"vpe00": np.array([BASE - DAY, BASE - DAY - 1])},
            [ticket()],
            predictive_period=DAY,
        )
        kinds = [r.kind for r in result.records]
        assert AnomalyKind.EARLY_WARNING in kinds
        assert AnomalyKind.FALSE_ALARM in kinds

    def test_duplicate_nested_period_credited(self):
        original = ticket(report=BASE, duration=8 * HOUR)
        dup = ticket(
            report=BASE + 2 * HOUR,
            duration=6 * HOUR,
            cause=RootCause.DUPLICATE,
            original_ticket_id=original.ticket_id,
        )
        result = map_anomalies(
            {"vpe00": np.array([BASE + 3 * HOUR])}, [original, dup]
        )
        # primary match is the earliest report (the original) ...
        assert result.records[0].ticket.ticket_id == original.ticket_id
        # ... but both tickets count as detected
        assert result.counts.tickets_detected == 2

    def test_counts(self):
        t = ticket()
        result = map_anomalies(
            {
                "vpe00": np.array(
                    [BASE - HOUR, BASE + HOUR, BASE - 20 * DAY]
                )
            },
            [t],
        )
        counts = result.counts
        assert counts.true_anomalies == 2
        assert counts.false_alarms == 1
        assert counts.tickets_detected == 1
        assert counts.tickets_total == 1

    def test_false_alarm_rate(self):
        result = map_anomalies(
            {"vpe00": np.array([BASE - 20 * DAY, BASE - 21 * DAY])},
            [ticket()],
        )
        assert result.false_alarms_per_day(10 * DAY) == pytest.approx(
            0.2
        )

    def test_empty_everything(self):
        result = map_anomalies({}, [])
        assert result.counts.precision == 0.0
        assert result.counts.recall == 0.0


class TestWarningClusters:
    def test_pair_forms_cluster(self):
        clusters = warning_clusters(
            np.array([100.0, 160.0]), min_size=2, max_gap=5 * MINUTE
        )
        assert list(clusters) == [100.0]

    def test_singleton_filtered(self):
        clusters = warning_clusters(
            np.array([100.0, 10000.0]), min_size=2
        )
        assert clusters.size == 0

    def test_min_size_one_keeps_all_starts(self):
        clusters = warning_clusters(
            np.array([100.0, 10000.0]), min_size=1
        )
        assert list(clusters) == [100.0, 10000.0]

    def test_gap_splits_clusters(self):
        times = np.array([0.0, 60.0, 7200.0, 7260.0])
        clusters = warning_clusters(times, min_size=2,
                                    max_gap=5 * MINUTE)
        assert list(clusters) == [0.0, 7200.0]

    def test_empty(self):
        assert warning_clusters(np.array([])).size == 0

    def test_unsorted_input_sorted_internally(self):
        clusters = warning_clusters(np.array([160.0, 100.0]))
        assert list(clusters) == [100.0]

    def test_invalid_min_size(self):
        with pytest.raises(ValueError):
            warning_clusters(np.array([1.0]), min_size=0)


class TestDetectionRateByOffset:
    def test_lead_time_thresholds(self):
        t = ticket()
        result = map_anomalies(
            {"vpe00": np.array([BASE - 10 * MINUTE])}, [t]
        )
        rates = detection_rate_by_offset(result)
        cause = t.root_cause.value
        assert rates[cause][15.0] == 0.0   # not 15 min early
        assert rates[cause][5.0] == 1.0    # is 5 min early
        assert rates[cause][0.0] == 1.0
        assert rates[cause][-15.0] == 1.0

    def test_post_report_detection_counts_at_negative_offsets(self):
        t = ticket()
        result = map_anomalies(
            {"vpe00": np.array([BASE + 10 * MINUTE])}, [t]
        )
        rates = detection_rate_by_offset(result)
        cause = t.root_cause.value
        assert rates[cause][0.0] == 0.0
        assert rates[cause][-5.0] == 0.0
        assert rates[cause][-15.0] == 1.0

    def test_all_key_aggregates(self):
        tickets = [
            ticket(vpe="a", report=BASE),
            ticket(vpe="b", report=BASE, cause=RootCause.SOFTWARE),
        ]
        result = map_anomalies(
            {"a": np.array([BASE - HOUR]), "b": np.array([])}, tickets
        )
        rates = detection_rate_by_offset(result)
        assert rates["all"][0.0] == pytest.approx(0.5)

    def test_duplicates_excluded_by_default(self):
        original = ticket()
        dup = ticket(
            report=BASE + HOUR,
            cause=RootCause.DUPLICATE,
            original_ticket_id=original.ticket_id,
        )
        result = map_anomalies(
            {"vpe00": np.array([BASE - HOUR])}, [original, dup]
        )
        rates = detection_rate_by_offset(result)
        assert "duplicate" not in rates
        rates_with = detection_rate_by_offset(
            result, include_duplicates=True
        )
        assert "duplicate" in rates_with

    def test_offsets_match_figure8(self):
        assert FIGURE8_OFFSETS_MINUTES == (15.0, 5.0, 0.0, -5.0, -15.0)
