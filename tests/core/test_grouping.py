"""Tests for repro.core.grouping."""

import pytest

from repro.core.grouping import (
    VpeGrouping,
    fully_custom_grouping,
    group_vpes,
    universal_grouping,
)
from repro.logs.templates import TemplateStore
from repro.timeutil import TRACE_START
from tests.conftest import make_message


def role_stream(texts, n=120, host="vpe00"):
    return [
        make_message(
            timestamp=TRACE_START + i * 10.0,
            host=host,
            text=texts[i % len(texts)],
        )
        for i in range(n)
    ]


ROLE_A = ["AAA: alpha event", "BBB: beta event"]
ROLE_B = ["CCC: gamma event", "DDD: delta event"]


@pytest.fixture()
def per_vpe_messages():
    return {
        "vpe00": role_stream(ROLE_A, host="vpe00"),
        "vpe01": role_stream(ROLE_A, host="vpe01"),
        "vpe02": role_stream(ROLE_B, host="vpe02"),
        "vpe03": role_stream(ROLE_B, host="vpe03"),
    }


@pytest.fixture()
def store(per_vpe_messages):
    merged = [
        m for stream in per_vpe_messages.values() for m in stream
    ]
    return TemplateStore().fit(merged)


class TestGroupVpes:
    def test_same_behaviour_same_group(self, per_vpe_messages, store):
        grouping = group_vpes(per_vpe_messages, store, k=2)
        assert grouping.group_of("vpe00") == grouping.group_of("vpe01")
        assert grouping.group_of("vpe02") == grouping.group_of("vpe03")
        assert grouping.group_of("vpe00") != grouping.group_of("vpe02")

    def test_auto_k_selects_two(self, per_vpe_messages, store):
        grouping = group_vpes(
            per_vpe_messages, store, candidates=(2, 3)
        )
        assert grouping.k == 2

    def test_k_capped_at_vpe_count(self, per_vpe_messages, store):
        grouping = group_vpes(per_vpe_messages, store, k=10)
        assert grouping.k <= 4

    def test_groups_partition_fleet(self, per_vpe_messages, store):
        grouping = group_vpes(per_vpe_messages, store, k=2)
        members = [
            vpe for group in grouping.groups.values() for vpe in group
        ]
        assert sorted(members) == sorted(per_vpe_messages)

    def test_empty_rejected(self, store):
        with pytest.raises(ValueError):
            group_vpes({}, store)


class TestTrivialGroupings:
    def test_universal(self):
        grouping = universal_grouping(["a", "b", "c"])
        assert grouping.k == 1
        assert grouping.members(0) == ["a", "b", "c"]

    def test_fully_custom(self):
        grouping = fully_custom_grouping(["a", "b"])
        assert grouping.k == 2
        assert grouping.group_of("a") != grouping.group_of("b")

    def test_unknown_vpe(self):
        grouping = universal_grouping(["a"])
        with pytest.raises(KeyError):
            grouping.group_of("z")
