"""Tests for repro.timeutil."""

import pytest
from hypothesis import given, strategies as st

from repro.timeutil import (
    DAY,
    HOUR,
    MINUTE,
    MONTH,
    TRACE_START,
    format_duration,
    iter_months,
    month_bounds,
    month_index,
)


class TestMonthIndex:
    def test_origin_is_month_zero(self):
        assert month_index(TRACE_START) == 0

    def test_last_second_of_month_zero(self):
        assert month_index(TRACE_START + MONTH - 1) == 0

    def test_first_second_of_month_one(self):
        assert month_index(TRACE_START + MONTH) == 1

    def test_before_origin_raises(self):
        with pytest.raises(ValueError):
            month_index(TRACE_START - 1)

    def test_custom_origin(self):
        assert month_index(100.0 + 2 * MONTH, origin=100.0) == 2

    @given(st.floats(min_value=0, max_value=1e9, allow_nan=False))
    def test_index_consistent_with_bounds(self, offset):
        index = month_index(TRACE_START + offset)
        start, end = month_bounds(index)
        assert start <= TRACE_START + offset < end


class TestMonthBounds:
    def test_width_is_one_month(self):
        start, end = month_bounds(3)
        assert end - start == MONTH

    def test_negative_index_raises(self):
        with pytest.raises(ValueError):
            month_bounds(-1)

    def test_months_tile_without_gaps(self):
        previous_end = None
        for _, start, end in iter_months(5):
            if previous_end is not None:
                assert start == previous_end
            previous_end = end


class TestIterMonths:
    def test_count(self):
        assert len(list(iter_months(18))) == 18

    def test_indices_ascending(self):
        indices = [index for index, _, _ in iter_months(4)]
        assert indices == [0, 1, 2, 3]


class TestFormatDuration:
    def test_seconds(self):
        assert format_duration(30) == "30s"

    def test_minutes(self):
        assert format_duration(5 * MINUTE) == "5.0min"

    def test_hours(self):
        assert format_duration(3 * HOUR) == "3.0h"

    def test_days(self):
        assert format_duration(2 * DAY) == "2.0d"

    def test_negative(self):
        assert format_duration(-30) == "-30s"
