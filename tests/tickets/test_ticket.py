"""Tests for repro.tickets.ticket."""

import pytest

from repro.tickets.ticket import RootCause, TroubleTicket
from repro.timeutil import DAY, HOUR, TRACE_START


def ticket(
    report=TRACE_START + 10 * HOUR,
    repair=None,
    cause=RootCause.CIRCUIT,
    vpe="vpe00",
    **kwargs,
):
    return TroubleTicket(
        vpe=vpe,
        root_cause=cause,
        report_time=report,
        repair_time=repair if repair is not None else report + 2 * HOUR,
        **kwargs,
    )


class TestTroubleTicket:
    def test_duration(self):
        t = ticket(report=100.0, repair=150.0)
        assert t.duration == 50.0

    def test_repair_before_report_rejected(self):
        with pytest.raises(ValueError):
            ticket(report=100.0, repair=50.0)

    def test_fault_after_report_rejected(self):
        with pytest.raises(ValueError):
            ticket(report=100.0, repair=200.0, fault_time=150.0)

    def test_duplicate_requires_original(self):
        with pytest.raises(ValueError):
            ticket(cause=RootCause.DUPLICATE)

    def test_duplicate_with_original_ok(self):
        dup = ticket(cause=RootCause.DUPLICATE, original_ticket_id=5)
        assert dup.is_duplicate

    def test_ids_are_unique(self):
        assert ticket().ticket_id != ticket().ticket_id

    def test_maintenance_is_schedule_predictable(self):
        assert RootCause.MAINTENANCE.is_predictable_by_schedule
        assert not RootCause.CIRCUIT.is_predictable_by_schedule


class TestTicketTimeline:
    def test_early_warning_window(self):
        t = ticket(report=1000.0 * DAY, repair=1000.0 * DAY + HOUR)
        timeline = t.timeline(predictive_period=DAY)
        assert timeline.is_early_warning(1000.0 * DAY - HOUR)
        assert not timeline.is_early_warning(1000.0 * DAY)
        assert not timeline.is_early_warning(999.0 * DAY - 1)

    def test_error_window(self):
        t = ticket(report=1000.0 * DAY, repair=1000.0 * DAY + HOUR)
        timeline = t.timeline()
        assert timeline.is_error(1000.0 * DAY)
        assert timeline.is_error(1000.0 * DAY + HOUR)
        assert not timeline.is_error(1000.0 * DAY + HOUR + 1)

    def test_contains_is_union(self):
        t = ticket(report=1000.0 * DAY, repair=1000.0 * DAY + HOUR)
        timeline = t.timeline(predictive_period=DAY)
        assert timeline.contains(999.5 * DAY)
        assert timeline.contains(1000.0 * DAY + 0.5 * HOUR)
        assert not timeline.contains(998.0 * DAY)
        assert not timeline.contains(1001.0 * DAY)

    def test_lead_time_sign(self):
        t = ticket(report=1000.0, repair=2000.0)
        timeline = t.timeline()
        assert timeline.lead_time(400.0) == 600.0   # before report
        assert timeline.lead_time(1500.0) == -500.0  # after report

    def test_negative_predictive_period_rejected(self):
        t = ticket()
        with pytest.raises(ValueError):
            t.timeline(predictive_period=-1.0)
