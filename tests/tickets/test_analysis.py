"""Tests for repro.tickets.analysis."""

import numpy as np
import pytest

from repro.tickets.analysis import (
    fleet_wide_events,
    interarrival_cdf,
    interarrival_hours,
    monthly_type_mix,
    non_duplicated,
    ticket_scatter,
    tickets_per_vpe,
)
from repro.tickets.ticket import RootCause, TroubleTicket
from repro.timeutil import HOUR, MONTH, TRACE_START


def ticket(offset_hours, cause=RootCause.CIRCUIT, vpe="vpe00",
           duration=HOUR, **kwargs):
    report = TRACE_START + offset_hours * HOUR
    return TroubleTicket(
        vpe=vpe,
        root_cause=cause,
        report_time=report,
        repair_time=report + duration,
        **kwargs,
    )


class TestNonDuplicated:
    def test_filters_duplicates(self):
        tickets = [
            ticket(1),
            ticket(2, cause=RootCause.DUPLICATE, original_ticket_id=1),
        ]
        assert len(non_duplicated(tickets)) == 1


class TestTicketsPerVpe:
    def test_grouping_and_sorting(self):
        tickets = [
            ticket(5, vpe="b"),
            ticket(1, vpe="a"),
            ticket(3, vpe="a"),
        ]
        grouped = tickets_per_vpe(tickets)
        assert set(grouped) == {"a", "b"}
        reports = [t.report_time for t in grouped["a"]]
        assert reports == sorted(reports)


class TestMonthlyTypeMix:
    def test_fractions_sum_to_one_where_tickets_exist(self):
        tickets = [
            ticket(1, cause=RootCause.MAINTENANCE),
            ticket(2, cause=RootCause.CIRCUIT),
            ticket(24 * 35, cause=RootCause.SOFTWARE),
        ]
        mix = monthly_type_mix(tickets, n_months=2)
        month0 = sum(values[0] for values in mix.values())
        month1 = sum(values[1] for values in mix.values())
        assert month0 == pytest.approx(1.0)
        assert month1 == pytest.approx(1.0)

    def test_empty_month_is_zero(self):
        mix = monthly_type_mix([ticket(1)], n_months=3)
        assert all(values[2] == 0.0 for values in mix.values())

    def test_tickets_beyond_horizon_ignored(self):
        mix = monthly_type_mix([ticket(24 * 65)], n_months=2)
        assert all(np.all(values == 0) for values in mix.values())


class TestInterarrival:
    def test_gaps_within_vpe_only(self):
        tickets = [
            ticket(0, vpe="a"),
            ticket(10, vpe="a"),
            ticket(5, vpe="b"),
        ]
        gaps = interarrival_hours(tickets)
        assert list(gaps) == [10.0]

    def test_duplicates_excluded(self):
        tickets = [
            ticket(0),
            ticket(1, cause=RootCause.DUPLICATE, original_ticket_id=1),
            ticket(10),
        ]
        assert list(interarrival_hours(tickets)) == [10.0]

    def test_cdf_monotone_and_bounded(self):
        tickets = [ticket(h, vpe="a") for h in (0, 5, 50, 51, 500)]
        hours, cdf = interarrival_cdf(tickets)
        assert np.all(np.diff(hours) >= 0)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] == pytest.approx(1.0)

    def test_cdf_empty(self):
        hours, cdf = interarrival_cdf([ticket(0)])
        assert hours.size == 0 and cdf.size == 0


class TestTicketScatter:
    def test_maintenance_excluded(self):
        cells = ticket_scatter([ticket(1, cause=RootCause.MAINTENANCE)])
        assert cells == []

    def test_rank_zero_is_busiest_vpe(self):
        tickets = [
            ticket(1, vpe="busy"),
            ticket(100, vpe="busy"),
            ticket(200, vpe="busy"),
            ticket(50, vpe="quiet"),
        ]
        cells = ticket_scatter(tickets)
        ranks = {rank for _, rank in cells}
        assert ranks == {0, 1}
        busy_cells = [c for c in cells if c[1] == 0]
        assert len(busy_cells) == 3


class TestFleetWideEvents:
    def test_detects_simultaneous_tickets(self):
        tickets = [
            ticket(10, vpe=f"vpe{i:02d}") for i in range(5)
        ]
        events = fleet_wide_events(tickets, min_vpes=4)
        assert len(events) == 1
        assert events[0][1] == 5

    def test_spread_tickets_not_flagged(self):
        tickets = [
            ticket(10 + 100 * i, vpe=f"vpe{i:02d}") for i in range(5)
        ]
        assert fleet_wide_events(tickets, min_vpes=4) == []
