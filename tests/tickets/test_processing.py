"""Tests for repro.tickets.processing."""

import pytest

from repro.tickets.processing import (
    MonitoringSignal,
    TicketingPolicy,
    TicketProcessor,
)
from repro.tickets.ticket import RootCause
from repro.timeutil import HOUR, MINUTE


def signal(t, fault_id=1, clears=None, cause=RootCause.CIRCUIT,
           vpe="vpe00"):
    return MonitoringSignal(
        timestamp=t,
        vpe=vpe,
        signature=f"{cause.value}-signature",
        root_cause=cause,
        fault_id=fault_id,
        clears_at=clears if clears is not None else t + HOUR,
    )


class TestTicketingPolicy:
    def test_defaults_valid(self):
        TicketingPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"verification_delay": -1},
            {"reoccurrence_count": 0},
            {"correlation_window": 0},
            {"duplicate_interval": 0},
            {"max_duplicates": -1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TicketingPolicy(**kwargs)


class TestTicketProcessor:
    def test_single_signal_insufficient(self):
        processor = TicketProcessor(
            TicketingPolicy(reoccurrence_count=2)
        )
        assert processor.process([signal(1000.0)]) == []

    def test_reoccurrence_opens_ticket(self):
        processor = TicketProcessor(
            TicketingPolicy(reoccurrence_count=2, max_duplicates=0)
        )
        tickets = processor.process(
            [signal(1000.0), signal(1060.0)]
        )
        assert len(tickets) == 1
        assert tickets[0].root_cause is RootCause.CIRCUIT

    def test_report_time_includes_verification_delay(self):
        policy = TicketingPolicy(
            reoccurrence_count=2,
            verification_delay=5 * MINUTE,
            max_duplicates=0,
        )
        tickets = TicketProcessor(policy).process(
            [signal(1000.0), signal(1060.0)]
        )
        assert tickets[0].report_time == 1060.0 + 5 * MINUTE

    def test_report_always_after_first_symptom(self):
        tickets = TicketProcessor().process(
            [signal(1000.0), signal(1060.0)]
        )
        assert tickets[0].report_time >= 1000.0
        assert tickets[0].fault_time == 1000.0

    def test_signals_outside_correlation_window_dont_accumulate(self):
        policy = TicketingPolicy(
            reoccurrence_count=2, correlation_window=10 * MINUTE
        )
        tickets = TicketProcessor(policy).process(
            [signal(0.0), signal(3 * HOUR)]
        )
        assert tickets == []

    def test_one_ticket_per_fault(self):
        processor = TicketProcessor(
            TicketingPolicy(reoccurrence_count=2, max_duplicates=0)
        )
        tickets = processor.process(
            [signal(1000.0 + 30 * i) for i in range(10)]
        )
        assert len(tickets) == 1

    def test_distinct_faults_distinct_tickets(self):
        processor = TicketProcessor(
            TicketingPolicy(reoccurrence_count=2, max_duplicates=0)
        )
        stream = [
            signal(1000.0, fault_id=1),
            signal(1030.0, fault_id=1),
            signal(5000.0, fault_id=2),
            signal(5030.0, fault_id=2),
        ]
        assert len(processor.process(stream)) == 2

    def test_long_fault_spawns_duplicates(self):
        policy = TicketingPolicy(
            reoccurrence_count=1,
            duplicate_interval=HOUR,
            max_duplicates=3,
        )
        tickets = TicketProcessor(policy).process(
            [signal(0.0, clears=10 * HOUR)]
        )
        original = tickets[0]
        duplicates = [t for t in tickets if t.is_duplicate]
        assert len(duplicates) == 3
        assert all(
            d.original_ticket_id == original.ticket_id
            for d in duplicates
        )
        assert all(
            d.report_time > original.report_time for d in duplicates
        )

    def test_short_fault_no_duplicates(self):
        policy = TicketingPolicy(
            reoccurrence_count=1, duplicate_interval=2 * HOUR
        )
        tickets = TicketProcessor(policy).process(
            [signal(0.0, clears=30 * MINUTE)]
        )
        assert len(tickets) == 1

    def test_output_sorted_by_report_time(self):
        processor = TicketProcessor(
            TicketingPolicy(reoccurrence_count=1, max_duplicates=2)
        )
        stream = [
            signal(9000.0, fault_id=2, clears=9000.0 + 9 * HOUR),
            signal(0.0, fault_id=1, clears=9 * HOUR),
        ]
        tickets = processor.process(stream)
        reports = [t.report_time for t in tickets]
        assert reports == sorted(reports)

    def test_repair_time_is_clear_time(self):
        processor = TicketProcessor(
            TicketingPolicy(reoccurrence_count=1, max_duplicates=0)
        )
        tickets = processor.process([signal(0.0, clears=HOUR)])
        assert tickets[0].repair_time == HOUR

    def test_deterministic(self):
        stream = [signal(1000.0 + i * 40, fault_id=i // 2)
                  for i in range(8)]
        first = TicketProcessor().process(list(stream))
        second = TicketProcessor().process(list(stream))
        assert [t.report_time for t in first] == [
            t.report_time for t in second
        ]
