"""Bad: a public method without a return annotation."""


class Accumulator:
    """Running total of observed values."""

    def __init__(self) -> None:
        self.total = 0.0

    def add(self, value: float):
        """Fold ``value`` into the running total."""
        self.total += value
        return self.total
