"""Good: every generator construction names its seed."""

import numpy as np


def sample(n: int, seed: int) -> "np.ndarray":
    """Draw ``n`` replayable uniform samples."""
    rng = np.random.default_rng(seed)
    return rng.random(n)
