"""Bad: the worker entrypoint fills an empty module-level cache."""

_CACHE: dict = {}


def _fine_tune_worker(batch: list) -> int:
    """Worker entrypoint writing per-key state into a module dict."""
    for key in batch:
        _CACHE[key] = True
    return len(_CACHE)
