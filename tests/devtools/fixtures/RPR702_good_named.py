"""Good: writer and reader share one named version constant."""

STATE_VERSION = 3


def state_dict(weights: dict) -> dict:
    """Serialize weights under the shared version constant."""
    return {"version": STATE_VERSION, "weights": weights}


def load(state: dict) -> dict:
    """Reject state written under any other version."""
    if state["version"] != STATE_VERSION:
        raise ValueError("unsupported state version")
    return state
