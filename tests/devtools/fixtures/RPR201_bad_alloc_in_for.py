# repro: hot-path
"""Bad: fresh buffers allocated on every loop iteration."""

import numpy as np


def score(batches: list) -> list:
    """Per-batch scores, allocating per iteration."""
    out = []
    for batch in batches:
        scratch = np.zeros(len(batch))
        out.append(float(scratch.sum()))
    return out
