"""Good: teardown releases inside finally, surviving earlier raises."""


class Archive:
    """An append-only file wrapper."""

    def __init__(self, path: str) -> None:
        self._handle = open(path, "a")

    def close(self) -> None:
        """Flush, then close no matter what the flush did."""
        try:
            self._handle.flush()
        finally:
            self._handle.close()
