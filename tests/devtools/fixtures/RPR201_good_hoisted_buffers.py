# repro: hot-path
"""Good: buffers hoisted; in-loop ufuncs write via ``out=``."""

import numpy as np


def score(batches: "np.ndarray") -> "np.ndarray":
    """Per-batch scores into preallocated storage."""
    out = np.zeros(len(batches))
    scratch = np.zeros(batches.shape[1])
    for index, batch in enumerate(batches):
        np.multiply(batch, batch, out=scratch)
        out[index] = scratch.sum()
    for name in ("a", "b"):
        # Literal-tuple loop: constant trip count, allocation is fine.
        _ = np.array([ord(c) for c in name])
    return out
