# repro: hot-path
"""Good: the comprehension runs once, outside the loop."""


def lengths(rows: list) -> list:
    """Row lengths via a single pre-computed filter pass."""
    filtered = [[cell for cell in row if cell] for row in rows]
    out = []
    for cells in filtered:
        out.append(len(cells))
    return out
