"""Bad: a lock released only on the fall-through path."""


class OwnerLock:
    """A pid-stamped lock file (stand-in for the runtime's)."""

    def __init__(self, path: str) -> None:
        self.path = path

    def release(self) -> None:
        """Delete the lock file."""


def guarded_update(path: str, apply: object) -> None:
    """Apply an update under the lock; a raise leaks the lock."""
    lock = OwnerLock(path)
    apply()
    lock.release()
