"""Bad: hoisting the metric does not hoist the per-item write."""

from repro import telemetry


def consume(messages: list) -> None:
    """Score messages, mutating a hoisted metric per item."""
    seen = telemetry.default_registry().counter("seen")
    for _message in messages:
        seen.inc()
