"""Good: draws go through an injected Generator."""

import numpy as np


def noise(rng: "np.random.Generator", n: int) -> "np.ndarray":
    """Draw from the caller's seeded generator."""
    return rng.random(n)
