"""Bad: sequential releases — the first raising skips the second."""


class WriteAheadLog:
    """Journal stand-in."""

    def __init__(self, path: str) -> None:
        self.path = path

    def close(self) -> None:
        """Flush and close the active segment."""


class OwnerLock:
    """Lock-file stand-in."""

    def __init__(self, path: str) -> None:
        self.path = path

    def release(self) -> None:
        """Delete the lock file."""


class Session:
    """Owns a journal and the directory lock."""

    def __init__(self, path: str) -> None:
        self._wal = WriteAheadLog(path)
        self._lock = OwnerLock(path)

    def shutdown(self) -> None:
        """Close both; a WAL close failure wedges the lock forever."""
        self._wal.close()
        self._lock.release()
