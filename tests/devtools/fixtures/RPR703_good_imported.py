"""Good: one owning definition; every user references it by name."""

WAL_MAGIC = b"WAL1"


def frame(payload: bytes) -> bytes:
    """Prefix the segment magic."""
    return WAL_MAGIC + payload


def accept(segment: bytes) -> bool:
    """Whether a segment leads with the expected magic."""
    return segment.startswith(WAL_MAGIC)
