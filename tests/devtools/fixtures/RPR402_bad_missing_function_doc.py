"""Bad module whose public function has no docstring."""


def orphan(value: int) -> int:
    return value + 1
