# repro: hot-path
"""Bad: growing an array by concatenation inside a loop."""

import numpy as np


def accumulate(chunks: list) -> "np.ndarray":
    """Concatenate chunks one at a time (quadratic garbage)."""
    total = np.zeros(0)
    index = 0
    while index < len(chunks):
        total = np.concatenate((total, chunks[index]))
        index += 1
    return total
