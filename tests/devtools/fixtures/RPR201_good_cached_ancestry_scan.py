# repro: hot-path
"""Good: membership sets cached outside the per-event loop."""

import numpy as np


def scan(anomalies: list, incidents: dict) -> list:
    """Assign each anomaly to an incident via precomputed members."""
    members = np.zeros((len(incidents), 1), dtype=bool)
    cached = {
        index: frozenset(incident)
        for index, incident in enumerate(incidents.values())
    }
    assigned = []
    for device, _time in anomalies:
        for index in range(len(cached)):
            members[index, 0] = device in cached[index]
        assigned.append(int(members.argmax()))
    return assigned
