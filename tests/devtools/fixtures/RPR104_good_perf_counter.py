"""Good: durations use the monotonic performance counter."""

import time


def elapsed(start: float) -> float:
    """Seconds since ``start`` (a perf_counter reading)."""
    return time.perf_counter() - start
