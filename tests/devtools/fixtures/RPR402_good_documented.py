"""Good: module, class and function all carry docstrings."""


class Widget:
    """A documented thing with a size."""

    def __init__(self, size: int) -> None:
        self.size = size


def orphan(value: int) -> int:
    """One more than ``value``."""
    return value + 1
