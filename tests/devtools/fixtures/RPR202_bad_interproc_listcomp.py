# repro: hot-path
"""Bad: the per-item container build hides inside a called helper."""


def _tokenize(line: str) -> list:
    """Uppercase tokens of one line (builds a list per call)."""
    return [token.upper() for token in line.split()]


def consume(lines: list) -> int:
    """Count tokens via a helper that allocates per iteration."""
    total = 0
    for line in lines:
        total += len(_tokenize(line))
    return total
