"""Bad: the state_dict version is written as a bare literal."""


def state_dict(weights: dict) -> dict:
    """Serialize weights under an inline version number."""
    return {"version": 3, "weights": weights}
