"""Good: only primitives and plain containers cross the pipe."""

import multiprocessing


def dispatch(conn: object, path: str) -> None:
    """Ship one job as a codec-safe plain dict."""
    conn.send({"path": str(path)})


def spawn(entry: object, shard: int) -> object:
    """Start a worker seeded with primitive arguments."""
    process = multiprocessing.Process(target=entry, args=(shard, "data"))
    process.start()
    return process
