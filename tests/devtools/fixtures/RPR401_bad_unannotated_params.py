"""Bad: public function parameters without annotations."""


def blend(left, right, weight: float = 0.5) -> float:
    """Weighted average of two numbers."""
    return left * weight + right * (1.0 - weight)
