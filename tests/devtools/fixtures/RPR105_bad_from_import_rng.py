"""Bad: module-level construction via a from-import."""

from numpy.random import default_rng

_SHARED = default_rng(1234)


def jitter() -> float:
    """Draw from the process-wide generator."""
    return float(_SHARED.random())
