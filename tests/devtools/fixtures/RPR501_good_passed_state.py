"""Good: workers are shared-nothing; state is passed in explicitly."""


def _accumulate(results: list, item: object) -> None:
    """Append one scored item to the caller-owned list."""
    results.append(item)


def _worker_main(items: list) -> list:
    """Worker entrypoint: all state lives in locals and arguments."""
    results: list = []
    for item in items:
        _accumulate(results, item)
    return results
