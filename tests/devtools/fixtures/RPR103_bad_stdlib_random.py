"""Bad: stdlib ``random`` draws from interpreter-global state."""

import random


def pick(items: list) -> object:
    """Pick an item using hidden global state."""
    return random.choice(items)
