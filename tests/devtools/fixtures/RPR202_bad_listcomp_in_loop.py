# repro: hot-path
"""Bad: a list comprehension materializes per loop iteration."""


def lengths(rows: list) -> list:
    """Row lengths, building a throwaway list per row."""
    out = []
    for row in rows:
        cells = [cell for cell in row if cell]
        out.append(len(cells))
    return out
