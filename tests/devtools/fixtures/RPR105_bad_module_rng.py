"""Bad: a module-level generator is import-time global state."""

import numpy as np

RNG = np.random.default_rng(0)


def sample(n: int) -> "np.ndarray":
    """Draw from the process-wide generator."""
    return RNG.random(n)
