"""Good: the generator is built inside its consumer."""

import numpy as np


def sample(n: int, seed: int) -> "np.ndarray":
    """Draw from a locally constructed, seeded generator."""
    rng = np.random.default_rng(seed)
    return rng.random(n)
