"""Bad: ``__all__`` advertises a name that does not exist."""

__all__ = ["exists", "vanished"]


def exists() -> None:
    """The only real export."""
