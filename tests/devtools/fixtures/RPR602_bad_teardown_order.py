"""Bad: close() flushes first, so a flush failure skips the close."""


class Archive:
    """An append-only file wrapper."""

    def __init__(self, path: str) -> None:
        self._handle = open(path, "a")

    def _flush(self) -> None:
        """Push buffered rows to the OS."""
        self._handle.flush()

    def close(self) -> None:
        """Flush then close — the close is skipped if flush raises."""
        self._flush()
        self._handle.close()
