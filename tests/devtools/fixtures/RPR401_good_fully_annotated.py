"""Good: every public signature is fully annotated."""


def blend(left: float, right: float, weight: float = 0.5) -> float:
    """Weighted average of two numbers."""
    return left * weight + right * (1.0 - weight)
