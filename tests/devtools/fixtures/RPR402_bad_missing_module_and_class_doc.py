class Widget:
    def __init__(self, size: int) -> None:
        self.size = size
