"""Bad: a thread pool coexists with a raw os.fork in one module."""

import os
from concurrent.futures import ThreadPoolExecutor


def prefetch(jobs: list) -> list:
    """Warm the cache on a thread pool."""
    pool = ThreadPoolExecutor(max_workers=2)
    return list(pool.map(str, jobs))


def fork_worker() -> int:
    """Fork a scoring worker; pool threads do not survive the fork."""
    return os.fork()
