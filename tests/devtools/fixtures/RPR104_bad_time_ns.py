"""Bad: nanosecond wall-clock reads are still wall-clock reads."""

import time


def stamp_ns() -> int:
    """The current wall-clock time in ns (time-dependent)."""
    return time.time_ns()
