"""Bad: a project class instance is passed as a Process argument."""

import multiprocessing


class _State:
    """Mutable runtime state; pickling it ships hidden structure."""

    def __init__(self) -> None:
        self.rows: list = []


def spawn(entry: object) -> object:
    """Start a worker seeded with a rich state object."""
    state = _State()
    process = multiprocessing.Process(target=entry, args=(state,))
    process.start()
    return process
