"""Good: the context manager releases on every control-flow path."""


def write_report(path: str, lines: list) -> None:
    """Write lines; the with block closes even on a failing write."""
    with open(path, "w") as handle:
        for line in lines:
            handle.write(line)
