"""Bad: incident telemetry mutated once per ingested anomaly."""

from repro import telemetry


def ingest_tick(anomalies: list, engine) -> None:
    """Fold a tick's anomalies, publishing per event."""
    registry = telemetry.default_registry()
    for device, time, score in anomalies:
        engine.ingest(device, time, score)
        registry.counter("rca.anomalies").inc()
