"""Bad: the same protocol constant rebound to a different literal."""

CODEC_VERSION = 1


def encode(payload: bytes) -> bytes:
    """Frame a payload under the current codec version."""
    return bytes([CODEC_VERSION]) + payload


CODEC_VERSION = 2
