"""Bad: a counter increment per message, not per batch."""

from repro import telemetry


def consume(messages: list) -> None:
    """Score messages, publishing telemetry per item."""
    registry = telemetry.default_registry()
    for _message in messages:
        registry.counter("seen").inc()
