"""Bad: ``__all__`` entries must be string literals."""


def exists() -> None:
    """The only real export."""


__all__ = [exists]
