"""Bad: legacy global draws under the full module name."""

import numpy


def jitter(n: int) -> "numpy.ndarray":
    """Gaussian jitter from the hidden global stream."""
    return numpy.random.normal(0.0, 1.0, size=n)
