"""Bad: entropy-seeded generator construction."""

import numpy as np


def sample(n: int) -> "np.ndarray":
    """Draw ``n`` uniform samples (irreproducibly)."""
    rng = np.random.default_rng()
    return rng.random(n)
