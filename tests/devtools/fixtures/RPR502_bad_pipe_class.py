"""Bad: a project class instance is sent over a multiprocessing pipe."""


class _Job:
    """A unit of work with an open-ended payload."""

    def __init__(self, path: str) -> None:
        self.path = path


def dispatch(conn: object, path: str) -> None:
    """Ship one job to a worker over its pipe."""
    job = _Job(path)
    conn.send(job)
