"""Good: one definition; writer and reader share the same literal."""

CODEC_VERSION = 1


def encode(payload: bytes) -> bytes:
    """Frame a payload under the codec version."""
    return bytes([CODEC_VERSION]) + payload


def decode(frame: bytes) -> bytes:
    """Reject frames from any other codec version."""
    if frame[0] != CODEC_VERSION:
        raise ValueError("codec version mismatch")
    return frame[1:]
