"""Bad: the constant is rebound mid-module (same value, two sites)."""

MANIFEST_VERSION = 4


def write_manifest(entries: list) -> dict:
    """Build the manifest document."""
    return {"schema": MANIFEST_VERSION, "entries": entries}


MANIFEST_VERSION = 4
