"""Bad: a helper reached from the worker entrypoint mutates a global."""

_RESULTS: list = []


def _accumulate(item: object) -> None:
    """Append one scored item to the shared module-level list."""
    _RESULTS.append(item)


def _worker_main(items: list) -> int:
    """Worker entrypoint: scores items via the mutating helper."""
    for item in items:
        _accumulate(item)
    return len(items)
