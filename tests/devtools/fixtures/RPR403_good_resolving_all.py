"""Good: every ``__all__`` entry resolves to a binding."""

__all__ = ["exists", "CONSTANT"]

CONSTANT = 7


def exists() -> None:
    """A real export."""
