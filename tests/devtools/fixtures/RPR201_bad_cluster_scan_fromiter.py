# repro: hot-path
"""Bad: a fresh membership array built per anomaly in the cluster scan."""

import numpy as np


def scan(anomalies: list, incidents: dict) -> list:
    """Assign each anomaly to an incident, allocating per event."""
    assigned = []
    for device, _time in anomalies:
        members = np.fromiter(
            (device in incident for incident in incidents.values()),
            dtype=bool,
        )
        assigned.append(int(members.argmax()))
    return assigned
