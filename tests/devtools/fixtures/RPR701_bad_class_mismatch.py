"""Bad: a reader's class-scope copy drifted from the writer's."""

TICK_MAGIC = 0xB1


def encode(payload: bytes) -> bytes:
    """Prefix the writer-side magic byte."""
    return bytes([TICK_MAGIC]) + payload


class Reader:
    """Decodes frames against its own (stale) copy of the magic."""

    TICK_MAGIC = 0xB0

    def check(self, frame: bytes) -> bool:
        """Whether a frame leads with the expected magic."""
        return frame[0] == self.TICK_MAGIC
