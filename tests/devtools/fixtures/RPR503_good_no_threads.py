"""Good: processes only — no threads exist when the fork happens."""

import multiprocessing


def spawn(fn: object) -> object:
    """Fork a worker from a thread-free parent."""
    process = multiprocessing.Process(target=fn)
    process.start()
    return process
