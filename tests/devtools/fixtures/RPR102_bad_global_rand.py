"""Bad: the legacy global RNG's convenience functions."""

import numpy as np


def noise(n: int) -> "np.ndarray":
    """Draw from the hidden global stream."""
    return np.random.rand(n)
