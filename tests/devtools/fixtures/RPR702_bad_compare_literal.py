"""Bad: the reader compares the version key against a bare literal."""


def load(state: dict) -> dict:
    """Accept only version-3 state blobs."""
    if state["version"] == 3:
        return state
    raise ValueError("unsupported state version")
