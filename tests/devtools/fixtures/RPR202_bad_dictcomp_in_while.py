# repro: hot-path
"""Bad: a dict comprehension materializes per loop iteration."""


def index_all(batches: list) -> list:
    """Per-batch index maps, one throwaway dict per batch."""
    out = []
    index = 0
    while index < len(batches):
        out.append({item: pos for pos, item in enumerate(batches[index])})
        index += 1
    return out
