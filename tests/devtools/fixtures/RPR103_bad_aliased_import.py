"""Bad: aliasing ``random`` does not launder the global state."""

import random as rnd


def coin() -> bool:
    """Flip a coin using hidden global state."""
    return rnd.random() < 0.5
