"""Good: the temp file is staged next to its destination."""

import os
import pathlib


def save(path: pathlib.Path, data: bytes) -> None:
    """Stage a sibling .tmp, then rename within one directory."""
    staging = path.with_name(path.name + ".tmp")
    with open(staging, "wb") as handle:
        handle.write(data)
    os.replace(staging, path)
