"""Bad: library code reads the wall clock."""

import time


def stamp() -> float:
    """The current wall-clock time (time-dependent behavior)."""
    return time.time()
