"""Bad: entropy-seeded generator via a from-import."""

from numpy.random import default_rng


def shuffle(items: list) -> list:
    """Shuffle a copy of ``items`` (irreproducibly)."""
    rng = default_rng()
    out = list(items)
    rng.shuffle(out)
    return out
