# repro: hot-path
"""Bad: the loop looks clean; the called helper allocates per call."""

import numpy as np


def _fresh_buffer(n: int) -> "np.ndarray":
    """A zeroed scratch buffer (allocates every call)."""
    return np.zeros(n)


def score(batches: list) -> list:
    """Per-batch scores via a helper that hides the allocation."""
    out = []
    for batch in batches:
        scratch = _fresh_buffer(len(batch))
        out.append(float(scratch.sum()))
    return out
