"""Bad: the temp file defaults to the system temp directory."""

import os
import tempfile


def save(path: str, data: bytes) -> None:
    """Stage in /tmp, then rename — not atomic across filesystems."""
    handle = tempfile.NamedTemporaryFile(delete=False)
    handle.write(data)
    handle.close()
    os.replace(handle.name, path)
