"""Bad: the handle is closed only when every write succeeds."""


def write_report(path: str, lines: list) -> None:
    """Write lines; a failing write leaks the handle."""
    handle = open(path, "w")
    for line in lines:
        handle.write(line)
    handle.close()
