"""Bad: the writer and a reader each define the (same) constant."""

WAL_MAGIC = b"WAL1"


def frame(payload: bytes) -> bytes:
    """Prefix the segment magic."""
    return WAL_MAGIC + payload


class Replayer:
    """Re-derives the magic instead of importing it."""

    WAL_MAGIC = b"WAL1"

    def accept(self, segment: bytes) -> bool:
        """Whether a segment leads with the expected magic."""
        return segment.startswith(self.WAL_MAGIC)
