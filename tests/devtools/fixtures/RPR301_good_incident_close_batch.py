"""Good: incident telemetry published once at the tick boundary."""

from repro import telemetry


def ingest_tick(anomalies: list, engine) -> None:
    """Fold a tick's anomalies, publishing at the batch boundary."""
    for device, time, score in anomalies:
        engine.ingest(device, time, score)
    registry = telemetry.default_registry()
    registry.counter("rca.anomalies").inc(len(anomalies))
