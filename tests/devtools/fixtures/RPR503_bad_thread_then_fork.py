"""Bad: the module spawns threads and also forks worker processes."""

import multiprocessing
import threading


def watch(fn: object) -> object:
    """Start a monitoring thread."""
    thread = threading.Thread(target=fn, daemon=True)
    thread.start()
    return thread


def spawn(fn: object) -> object:
    """Fork a worker after the thread above may already be running."""
    process = multiprocessing.Process(target=fn)
    process.start()
    return process
