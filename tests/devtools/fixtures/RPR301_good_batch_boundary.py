"""Good: telemetry publishes once, after the loop."""

from repro import telemetry


def consume(messages: list) -> None:
    """Score messages, publishing telemetry at the batch boundary."""
    count = 0
    for _message in messages:
        count += 1
    telemetry.default_registry().counter("seen").inc(count)
