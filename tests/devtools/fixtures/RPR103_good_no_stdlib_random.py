"""Good: randomness comes from an injected numpy Generator."""

import numpy as np


def pick(rng: "np.random.Generator", items: list) -> object:
    """Pick an item using the caller's seeded generator."""
    return items[int(rng.integers(len(items)))]
