# repro: hot-path
"""Good: the helper writes into a hoisted buffer via out=."""

import numpy as np


def _fill(buffer: "np.ndarray") -> "np.ndarray":
    """Zero the caller's buffer in place."""
    buffer[:] = 0.0
    return buffer


def score(batches: list, width: int) -> list:
    """Per-batch scores reusing one scratch buffer."""
    scratch = np.zeros(width)
    out = []
    for batch in batches:
        _fill(scratch)
        out.append(float(scratch.sum()) + len(batch))
    return out
