"""Bad: the staging path is a hard-coded /tmp location."""

import os


def save(path: str, data: bytes) -> None:
    """Stage at a /tmp literal, then rename across filesystems."""
    staging = "/tmp/staging.bin"
    with open(staging, "wb") as handle:
        handle.write(data)
    os.replace(staging, path)
