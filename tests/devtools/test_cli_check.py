"""End-to-end CLI behavior of ``python -m repro check``.

The exit-code contract (0 clean, 1 diagnostics, 2 usage error) is what
CI's ``invariant-check`` job relies on, and the final test is the
repository's own gate: the tree must check clean.
"""

import json
import pathlib
import subprocess
import sys
import tempfile

import pytest

from repro.devtools.cli import code_rationales

ROOT = pathlib.Path(__file__).resolve().parents[2]

BAD_SOURCE = (
    '"""Doc."""\n'
    "import time\n\n\n"
    "def now() -> float:\n"
    '    """Doc."""\n'
    "    return time.time()\n"
)


def run_check(*argv, cwd=ROOT, cache_dir=None):
    # Keep subprocess runs out of the real user cache: point the
    # cache at a throwaway directory unless a test supplies one.
    if cache_dir is None:
        cache_dir = tempfile.mkdtemp(prefix="repro-check-test-")
    return subprocess.run(
        [sys.executable, "-m", "repro", "check", *argv],
        capture_output=True,
        text=True,
        cwd=str(cwd),
        env={
            "PYTHONPATH": str(ROOT / "src"),
            "PATH": "/usr/bin:/bin",
            "REPRO_CHECK_CACHE_DIR": str(cache_dir),
        },
    )


@pytest.fixture
def bad_tree(tmp_path):
    (tmp_path / "bad.py").write_text(BAD_SOURCE)
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path):
        (tmp_path / "ok.py").write_text('"""Doc."""\n\nVALUE = 1\n')
        assert run_check(str(tmp_path)).returncode == 0

    def test_diagnostics_exit_one(self, bad_tree):
        result = run_check(str(bad_tree))
        assert result.returncode == 1
        assert "RPR104" in result.stdout

    def test_missing_path_exits_two(self, tmp_path):
        result = run_check(str(tmp_path / "missing"))
        assert result.returncode == 2

    def test_bad_code_filter_exits_two(self):
        result = run_check("--select", "E501", "src")
        assert result.returncode == 2


class TestFilters:
    def test_ignore_silences_family(self, bad_tree):
        result = run_check("--ignore", "RPR104", str(bad_tree))
        assert result.returncode == 0

    def test_select_narrows_to_family(self, bad_tree):
        result = run_check("--select", "RPR2", str(bad_tree))
        assert result.returncode == 0


class TestJsonOutput:
    def test_json_report_written(self, bad_tree, tmp_path):
        out = tmp_path / "report.json"
        result = run_check(
            str(bad_tree), "--format", "json", "--out", str(out)
        )
        assert result.returncode == 1
        payload = json.loads(out.read_text())
        assert payload["counts"]["diagnostics"] == 1
        assert payload["counts"]["by_code"] == {"RPR104": 1}


class TestSarifOutput:
    def test_sarif_report_written(self, bad_tree, tmp_path):
        out = tmp_path / "report.sarif"
        result = run_check(
            str(bad_tree), "--format", "sarif", "--out", str(out)
        )
        assert result.returncode == 1
        payload = json.loads(out.read_text())
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-check"
        assert [r["ruleId"] for r in run["results"]] == ["RPR104"]

    def test_sarif_to_stdout(self, bad_tree):
        result = run_check(str(bad_tree), "--format", "sarif")
        payload = json.loads(result.stdout)
        assert payload["version"] == "2.1.0"


class TestCacheFlags:
    def test_second_run_is_warm(self, bad_tree, tmp_path):
        cache = tmp_path / "cache"
        run_check(str(bad_tree), cache_dir=cache)
        warm = run_check(str(bad_tree), cache_dir=cache)
        assert "(1 cached)" in warm.stdout

    def test_no_cache_stays_cold(self, bad_tree, tmp_path):
        cache = tmp_path / "cache"
        run_check(str(bad_tree), cache_dir=cache)
        cold = run_check(str(bad_tree), "--no-cache", cache_dir=cache)
        assert "(0 cached)" in cold.stdout

    def test_no_cache_writes_nothing(self, bad_tree, tmp_path):
        cache = tmp_path / "cache"
        run_check(str(bad_tree), "--no-cache", cache_dir=cache)
        assert not cache.exists()


class TestListCodes:
    def test_list_prints_every_code(self):
        result = run_check("--list")
        assert result.returncode == 0
        for code, rationale in code_rationales().items():
            assert code in result.stdout
            assert rationale.split(";")[0] in result.stdout

    def test_meta_codes_listed(self):
        stdout = run_check("--list").stdout
        for code in ("RPR000", "RPR001", "RPR002"):
            assert code in stdout


class TestRepositoryGate:
    def test_src_checks_clean(self):
        """The repository's own source must satisfy its invariants."""
        result = run_check("src")
        assert result.returncode == 0, result.stdout + result.stderr
