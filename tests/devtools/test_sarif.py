"""SARIF 2.1.0 export: structural pins plus schema validation.

The full OASIS schema is too large to vendor, so validation runs
against an embedded subset covering the pieces CI consumers (code
scanning uploads) actually read: version, driver, rules, results,
and physical locations.  Structure tests pin the parts the subset
schema cannot express (rule/result index consistency, 1-based
columns).
"""

import json

import jsonschema

from repro.devtools import registered_codes
from repro.devtools.cli import code_rationales
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.sarif import (
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    diagnostics_to_sarif,
)

SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["$schema", "version", "runs"],
    "properties": {
        "$schema": {"type": "string", "format": "uri"},
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name", "rules"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "version": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": [
                                                "id",
                                                "shortDescription",
                                            ],
                                            "properties": {
                                                "id": {
                                                    "type": "string",
                                                    "pattern": r"^RPR\d{3}$",
                                                },
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": [
                                "ruleId",
                                "level",
                                "message",
                                "locations",
                            ],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {
                                    "type": "integer",
                                    "minimum": 0,
                                },
                                "level": {
                                    "enum": [
                                        "none",
                                        "note",
                                        "warning",
                                        "error",
                                    ]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "minItems": 1,
                                    "items": {
                                        "type": "object",
                                        "required": ["physicalLocation"],
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "required": [
                                                    "artifactLocation",
                                                    "region",
                                                ],
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "required": ["uri"],
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "required": [
                                                            "startLine"
                                                        ],
                                                        "properties": {
                                                            "startLine": {
                                                                "type": (
                                                                    "integer"
                                                                ),
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": (
                                                                    "integer"
                                                                ),
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}

SAMPLE = [
    Diagnostic(
        path="src/pkg/a.py",
        line=12,
        col=4,
        code="RPR101",
        message="bare except swallows KeyboardInterrupt",
    ),
    Diagnostic(
        path="src/pkg/b.py",
        line=3,
        col=0,
        code="RPR601",
        message="resource acquired without finally",
    ),
]


def _export(diagnostics=SAMPLE):
    return json.loads(diagnostics_to_sarif(diagnostics, code_rationales()))


class TestSchema:
    def test_sample_log_validates(self):
        jsonschema.validate(_export(), SARIF_SUBSET_SCHEMA)

    def test_empty_log_validates(self):
        jsonschema.validate(_export([]), SARIF_SUBSET_SCHEMA)


class TestStructure:
    def test_version_and_schema_uri(self):
        doc = _export()
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert doc["$schema"] == SARIF_SCHEMA_URI

    def test_driver_identity(self):
        driver = _export()["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-check"
        assert driver["version"]

    def test_rules_cover_every_registered_code(self):
        driver = _export()["runs"][0]["tool"]["driver"]
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert rule_ids == sorted(rule_ids)
        # Every check code plus the RPR00x meta codes, which can
        # also surface as results (syntax errors, bad pragmas).
        assert set(rule_ids) == set(code_rationales())
        assert set(rule_ids) >= set(registered_codes())

    def test_rule_index_points_at_matching_rule(self):
        run = _export()["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_results_mirror_diagnostics(self):
        results = _export()["runs"][0]["results"]
        assert len(results) == len(SAMPLE)
        first = results[0]
        region = first["locations"][0]["physicalLocation"]["region"]
        assert first["ruleId"] == "RPR101"
        assert first["level"] == "error"
        assert first["message"]["text"] == SAMPLE[0].message
        assert region["startLine"] == 12
        # SARIF columns are 1-based; diagnostics carry 0-based cols.
        assert region["startColumn"] == 5

    def test_uri_is_the_diagnostic_path(self):
        result = _export()["runs"][0]["results"][1]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/pkg/b.py"
