"""Suppression semantics: coded noqa, bare noqa, stale noqa.

The contract from the module docstring of :mod:`repro.devtools.suppress`:
a suppression silences only the named codes on its own line; a bare
``# repro: noqa`` is RPR001; one that silences nothing is RPR002.
"""

import textwrap

from repro.devtools import Analyzer
from repro.devtools.suppress import scan_suppressions

HOT = "# repro: hot-path\n"


def check(source, **kwargs):
    analyzer = Analyzer(**kwargs)
    return analyzer.check_source("fixture.py", textwrap.dedent(source))


BAD_LOOP = '''\
"""Module doc."""
import numpy as np


def f(items: list) -> None:
    """Doc."""
    for item in items:
        _ = np.zeros(3){noqa}
'''


class TestCodedSuppression:
    def test_coded_noqa_silences_and_counts(self):
        source = HOT + BAD_LOOP.format(noqa="  # repro: noqa[RPR201]")
        report = check(source)
        assert report.diagnostics == []
        assert report.n_suppressed == 1

    def test_unsuppressed_violation_reported(self):
        report = check(HOT + BAD_LOOP.format(noqa=""))
        assert [d.code for d in report.diagnostics] == ["RPR201"]
        assert report.n_suppressed == 0

    def test_wrong_code_does_not_silence(self):
        source = HOT + BAD_LOOP.format(noqa="  # repro: noqa[RPR202]")
        codes = {d.code for d in check(source).diagnostics}
        # The violation survives and the suppression is stale.
        assert codes == {"RPR002", "RPR201"}

    def test_multi_code_suppression(self):
        source = HOT + (
            '"""Module doc."""\n'
            "import numpy as np\n\n\n"
            "def f(items: list) -> None:\n"
            '    """Doc."""\n'
            "    for item in items:\n"
            "        _ = np.array([x for x in item])"
            "  # repro: noqa[RPR201, RPR202]\n"
        )
        report = check(source)
        assert report.diagnostics == []
        assert report.n_suppressed == 2

    def test_case_insensitive_directive(self):
        source = HOT + BAD_LOOP.format(noqa="  # REPRO: NOQA[rpr201]")
        assert check(source).diagnostics == []

    def test_only_same_line_is_silenced(self):
        source = HOT + (
            '"""Module doc."""\n'
            "import numpy as np\n\n\n"
            "def f(items: list) -> None:\n"
            '    """Doc."""\n'
            "    for item in items:\n"
            "        # repro: noqa[RPR201]\n"
            "        _ = np.zeros(3)\n"
        )
        codes = [d.code for d in check(source).diagnostics]
        # Comment-line suppression does not cover the next line; it is
        # itself stale.
        assert codes == ["RPR002", "RPR201"]


class TestMetaDiagnostics:
    def test_bare_noqa_is_rpr001(self):
        source = HOT + BAD_LOOP.format(noqa="  # repro: noqa")
        codes = {d.code for d in check(source).diagnostics}
        assert codes == {"RPR001", "RPR201"}

    def test_malformed_code_list_is_rpr001(self):
        source = HOT + BAD_LOOP.format(noqa="  # repro: noqa[banana]")
        codes = {d.code for d in check(source).diagnostics}
        assert codes == {"RPR001", "RPR201"}

    def test_stale_noqa_is_rpr002(self):
        source = (
            '"""Module doc."""\n\n'
            "VALUE = 1  # repro: noqa[RPR104]\n"
        )
        report = check(source)
        assert [d.code for d in report.diagnostics] == ["RPR002"]
        assert "RPR104" in report.diagnostics[0].message

    def test_syntax_error_is_rpr000(self):
        report = check("def broken(:\n    pass\n")
        assert [d.code for d in report.diagnostics] == ["RPR000"]

    def test_docstring_prose_is_not_a_directive(self):
        source = (
            '"""Mentions # repro: noqa[RPR201] in prose only."""\n\n'
            "VALUE = 1\n"
        )
        assert check(source).diagnostics == []
        assert scan_suppressions(source) == []
