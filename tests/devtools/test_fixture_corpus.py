"""Fixture-driven coverage of every RPR diagnostic code.

Each file in ``fixtures/`` is named ``<code>_<verdict>_<slug>.py``.
A ``bad`` fixture must trigger at least one diagnostic of its code
(and anchors the check's behavior); a ``good`` fixture is the minimal
compliant counterpart and must be clean for that code.  The corpus
doubles as executable documentation: ``--list`` names the rules, the
fixtures show them.
"""

import pathlib
import re

import pytest

from repro.devtools import Analyzer, CheckConfig, registered_codes

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
_NAME_RE = re.compile(r"^(RPR\d{3})_(bad|good)_?\w*\.py$")


def _fixture_cases():
    cases = []
    for path in sorted(FIXTURES.glob("*.py")):
        match = _NAME_RE.match(path.name)
        assert match, f"fixture {path.name} does not follow naming"
        cases.append((path, match.group(1), match.group(2)))
    return cases


CASES = _fixture_cases()


def _check_one(path, code):
    analyzer = Analyzer(CheckConfig(), select=(code,))
    return analyzer.check_file(path).diagnostics


class TestCorpusShape:
    def test_every_code_has_two_bad_and_one_good(self):
        """The ISSUE floor: >=2 bad and >=1 good fixture per code."""
        by_code = {}
        for _, code, verdict in CASES:
            by_code.setdefault(code, []).append(verdict)
        assert set(by_code) == set(registered_codes())
        for code, verdicts in by_code.items():
            assert verdicts.count("bad") >= 2, code
            assert verdicts.count("good") >= 1, code


@pytest.mark.parametrize(
    "path,code,verdict",
    CASES,
    ids=[p.name for p, _, _ in CASES],
)
def test_fixture(path, code, verdict):
    diagnostics = _check_one(path, code)
    if verdict == "bad":
        assert diagnostics, f"{path.name} should trigger {code}"
        assert {d.code for d in diagnostics} == {code}
    else:
        assert not diagnostics, [d.format() for d in diagnostics]


def test_bad_fixtures_quiet_for_other_files(tmp_path):
    """A bad fixture's violation stays put under path-based configs."""
    source = (FIXTURES / "RPR201_bad_alloc_in_for.py").read_text()
    stripped = source.replace("# repro: hot-path\n", "")
    plain = tmp_path / "not_hot.py"
    plain.write_text(stripped)
    assert not _check_one(plain, "RPR201")
