"""Cache behavior for the whole-program analyzer.

A warm run must parse nothing, reproduce the cold run's diagnostics
exactly, invalidate only edited files, and shrug off corrupt cache
documents.  The timing test is benchmark-shaped: it pins the warm
run faster than the cold one over a corpus large enough that parse
cost dominates.
"""

import json
import time

import pytest

from repro.devtools import IndexCache, default_cache_dir, run_check
from repro.devtools.cache import CACHE_DIR_ENV


def _write_tree(root, n_files=6, body_lines=4):
    """Lay out a small package of benign modules; return the pkg dir."""
    pkg = root / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for i in range(n_files):
        lines = ["def fn_%d_%d(x):" % (i, j) + "\n    return x + %d\n" % j
                 for j in range(body_lines)]
        (pkg / f"mod_{i}.py").write_text('"""Module %d."""\n\n' % i
                                         + "\n".join(lines))
    return pkg


class TestWarmRuns:
    def test_warm_run_parses_nothing_and_matches_cold(self, tmp_path):
        pkg = _write_tree(tmp_path)
        cache_dir = tmp_path / "cache"
        cold = run_check([str(pkg)], cache_dir=cache_dir)
        assert cold.files_parsed == cold.n_files
        assert cold.files_cached == 0
        warm = run_check([str(pkg)], cache_dir=cache_dir)
        assert warm.files_parsed == 0
        assert warm.files_cached == warm.n_files == cold.n_files
        assert warm.diagnostics == cold.diagnostics
        assert warm.n_suppressed == cold.n_suppressed

    def test_edit_invalidates_only_the_edited_file(self, tmp_path):
        pkg = _write_tree(tmp_path)
        cache_dir = tmp_path / "cache"
        run_check([str(pkg)], cache_dir=cache_dir)
        target = pkg / "mod_0.py"
        target.write_text(target.read_text() + "\n\ndef extra(x):\n"
                          "    return x\n")
        warm = run_check([str(pkg)], cache_dir=cache_dir)
        assert warm.files_parsed == 1
        assert warm.files_cached == warm.n_files - 1

    def test_select_change_misses_the_cache(self, tmp_path):
        pkg = _write_tree(tmp_path, n_files=2)
        cache_dir = tmp_path / "cache"
        run_check([str(pkg)], cache_dir=cache_dir)
        narrowed = run_check(
            [str(pkg)], select=("RPR1",), cache_dir=cache_dir
        )
        assert narrowed.files_parsed == narrowed.n_files
        assert narrowed.files_cached == 0

    def test_diagnostics_survive_the_round_trip(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        bad = pkg / "bad.py"
        bad.write_text(
            '"""Module with a bare except."""\n\n\n'
            "def swallow(fn):\n"
            '    """Run fn, eating everything."""\n'
            "    try:\n"
            "        return fn()\n"
            "    except:\n"
            "        return None\n"
        )
        cache_dir = tmp_path / "cache"
        cold = run_check([str(pkg)], cache_dir=cache_dir)
        warm = run_check([str(pkg)], cache_dir=cache_dir)
        assert cold.diagnostics
        assert warm.diagnostics == cold.diagnostics
        assert warm.files_parsed == 0


class TestResilience:
    def test_corrupt_cache_file_falls_back_to_cold_parse(self, tmp_path):
        pkg = _write_tree(tmp_path, n_files=2)
        cache_dir = tmp_path / "cache"
        run_check([str(pkg)], cache_dir=cache_dir)
        for doc in cache_dir.glob("index-*.json"):
            doc.write_text("{ not json")
        warm = run_check([str(pkg)], cache_dir=cache_dir)
        assert warm.files_parsed == warm.n_files
        assert warm.files_cached == 0

    def test_schema_bump_invalidates(self, tmp_path):
        pkg = _write_tree(tmp_path, n_files=2)
        cache_dir = tmp_path / "cache"
        run_check([str(pkg)], cache_dir=cache_dir)
        for doc in cache_dir.glob("index-*.json"):
            payload = json.loads(doc.read_text())
            payload["schema"] = -1
            doc.write_text(json.dumps(payload))
        warm = run_check([str(pkg)], cache_dir=cache_dir)
        assert warm.files_parsed == warm.n_files

    def test_unwritable_directory_is_tolerated(self, tmp_path):
        pkg = _write_tree(tmp_path, n_files=2)
        blocked = tmp_path / "blocked"
        blocked.write_text("not a directory")
        report = run_check([str(pkg)], cache_dir=blocked / "cache")
        assert report.files_parsed == report.n_files

    def test_no_cache_dir_means_no_cache_io(self, tmp_path):
        pkg = _write_tree(tmp_path, n_files=2)
        first = run_check([str(pkg)], cache_dir=None)
        second = run_check([str(pkg)], cache_dir=None)
        assert first.files_cached == 0
        assert second.files_cached == 0
        assert second.files_parsed == second.n_files


class TestDefaultDirectory:
    def test_env_override_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"

    def test_falls_back_under_home(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        resolved = default_cache_dir()
        assert resolved is None or resolved.name == "repro-check"


class TestIndexCacheUnit:
    def test_distinct_key_parts_use_distinct_documents(self, tmp_path):
        a = IndexCache(tmp_path, ("sel-a", "", "cfg"))
        b = IndexCache(tmp_path, ("sel-b", "", "cfg"))
        assert a.path != b.path

    def test_save_is_a_no_op_until_dirty(self, tmp_path):
        cache = IndexCache(tmp_path, ("", "", "cfg"))
        cache.save()
        assert not list(tmp_path.glob("index-*.json"))


@pytest.mark.perf
class TestWarmRunSpeed:
    def test_warm_beats_cold(self, tmp_path):
        pkg = _write_tree(tmp_path, n_files=100, body_lines=30)
        cache_dir = tmp_path / "cache"
        t0 = time.perf_counter()
        cold = run_check([str(pkg)], cache_dir=cache_dir)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = run_check([str(pkg)], cache_dir=cache_dir)
        warm_s = time.perf_counter() - t0
        assert warm.files_parsed == 0
        assert cold.n_files == warm.n_files == 101
        # Generous bound: skipping 100 parses must show up even on a
        # noisy CI box.
        assert warm_s < cold_s
