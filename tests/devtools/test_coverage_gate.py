"""Unit tests for the CI coverage-floor gate."""

import importlib.util
import pathlib

import pytest

_ROOT = pathlib.Path(__file__).resolve().parents[2]
_SPEC = importlib.util.spec_from_file_location(
    "coverage_gate", _ROOT / "scripts" / "coverage_gate.py"
)
coverage_gate = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(coverage_gate)


COVERAGE_XML = """\
<?xml version="1.0" ?>
<coverage version="7.4.0" timestamp="1754600000000"
          lines-valid="1000" lines-covered="{covered}"
          line-rate="{rate}" branch-rate="0" complexity="0">
  <packages><package name="repro" line-rate="{rate}"/></packages>
</coverage>
"""


def write_xml(tmp_path, rate):
    path = tmp_path / "coverage.xml"
    path.write_text(
        COVERAGE_XML.format(rate=rate, covered=int(rate * 1000))
    )
    return path


def write_floor(tmp_path, text):
    path = tmp_path / "COVERAGE_FLOOR"
    path.write_text(text)
    return path


class TestParsing:
    def test_reads_root_line_rate(self, tmp_path):
        path = write_xml(tmp_path, 0.8375)
        assert coverage_gate.read_line_rate(path) == pytest.approx(0.8375)

    def test_missing_line_rate_rejected(self, tmp_path):
        path = tmp_path / "coverage.xml"
        path.write_text("<coverage><packages/></coverage>")
        with pytest.raises(SystemExit, match="no line-rate"):
            coverage_gate.read_line_rate(path)

    def test_reads_floor(self, tmp_path):
        assert coverage_gate.read_floor(
            write_floor(tmp_path, "0.70\n")
        ) == pytest.approx(0.70)

    def test_non_numeric_floor_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="expected a float"):
            coverage_gate.read_floor(write_floor(tmp_path, "seventy\n"))

    def test_out_of_range_floor_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="outside"):
            coverage_gate.read_floor(write_floor(tmp_path, "70.0\n"))

    def test_checked_in_floor_parses(self):
        floor = coverage_gate.read_floor(_ROOT / "COVERAGE_FLOOR")
        assert 0.0 < floor < 1.0


class TestGate:
    def test_at_floor_passes(self):
        code, message = coverage_gate.gate(0.70, 0.70)
        assert code == 0
        assert "passed" in message

    def test_within_tolerance_passes(self):
        code, _ = coverage_gate.gate(0.695, 0.70)
        assert code == 0

    def test_beyond_tolerance_fails(self):
        code, message = coverage_gate.gate(0.68, 0.70)
        assert code == 1
        assert "FAILED" in message

    def test_large_gain_suggests_ratchet(self):
        code, message = coverage_gate.gate(0.80, 0.70)
        assert code == 0
        assert "raise COVERAGE_FLOOR" in message


class TestMain:
    def test_end_to_end_pass(self, tmp_path, capsys):
        xml = write_xml(tmp_path, 0.75)
        floor = write_floor(tmp_path, "0.70\n")
        assert coverage_gate.main(["gate", str(xml), str(floor)]) == 0
        assert "passed" in capsys.readouterr().out

    def test_end_to_end_fail(self, tmp_path, capsys):
        xml = write_xml(tmp_path, 0.60)
        floor = write_floor(tmp_path, "0.70\n")
        assert coverage_gate.main(["gate", str(xml), str(floor)]) == 1
        assert "FAILED" in capsys.readouterr().err

    def test_usage_error(self, capsys):
        assert coverage_gate.main(["gate"]) == 2
        assert "Usage" in capsys.readouterr().err
