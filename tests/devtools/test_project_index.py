"""Unit coverage of the whole-program index and its call graph.

The project checks are only as sound as the resolution tiers under
them, so each tier — direct names, imported symbols, ``self``
methods, base-class walks, typed receivers — is pinned here, along
with the conservative fallback (``confident=False``) and the
cycle/depth behavior of the reachability walks.
"""

import ast

from repro.devtools import CheckConfig
from repro.devtools.project import (
    ModuleSummary,
    ProjectIndex,
    module_name_for_path,
    summarize_module,
)


def build_index(files):
    """Assemble an index from ``{path: source}``."""
    index = ProjectIndex(CheckConfig())
    for path, source in files.items():
        tree = ast.parse(source, filename=path)
        index.add(summarize_module(path, source, tree, index.config))
    return index


class TestModuleNames:
    def test_src_relative_dotted(self):
        assert module_name_for_path("src/repro/runtime/wal.py") == (
            "repro.runtime.wal"
        )

    def test_package_init_maps_to_package(self):
        assert module_name_for_path("src/repro/__init__.py") == "repro"

    def test_plain_file_uses_stem(self):
        assert module_name_for_path("scripts/tool.py") == "scripts.tool"


class TestCallResolution:
    def test_direct_module_level_name(self):
        index = build_index(
            {
                "src/pkg/a.py": (
                    "def helper():\n    return 1\n\n"
                    "def caller():\n    return helper()\n"
                )
            }
        )
        module = index.modules["pkg.a"]
        function = module.functions["caller"]
        resolution = index.resolve_call(module, function, ("helper",))
        assert resolution.confident
        assert resolution.candidates == ["pkg.a::helper"]

    def test_imported_project_function(self):
        index = build_index(
            {
                "src/pkg/b.py": "def helper():\n    return 2\n",
                "src/pkg/a.py": (
                    "from pkg.b import helper\n\n"
                    "def caller():\n    return helper()\n"
                ),
            }
        )
        module = index.modules["pkg.a"]
        function = module.functions["caller"]
        resolution = index.resolve_call(module, function, ("helper",))
        assert resolution.confident
        assert resolution.candidates == ["pkg.b::helper"]

    def test_self_method_resolution(self):
        index = build_index(
            {
                "src/pkg/a.py": (
                    "class Engine:\n"
                    "    def step(self):\n"
                    "        return self.finish()\n\n"
                    "    def finish(self):\n"
                    "        return 0\n"
                )
            }
        )
        module = index.modules["pkg.a"]
        function = module.functions["Engine.step"]
        resolution = index.resolve_call(module, function, ("self", "finish"))
        assert resolution.confident
        assert resolution.candidates == ["pkg.a::Engine.finish"]

    def test_self_method_through_base_class(self):
        index = build_index(
            {
                "src/pkg/a.py": (
                    "class Base:\n"
                    "    def finish(self):\n"
                    "        return 0\n\n\n"
                    "class Engine(Base):\n"
                    "    def step(self):\n"
                    "        return self.finish()\n"
                )
            }
        )
        module = index.modules["pkg.a"]
        function = module.functions["Engine.step"]
        resolution = index.resolve_call(module, function, ("self", "finish"))
        assert resolution.confident
        assert resolution.candidates == ["pkg.a::Base.finish"]

    def test_typed_receiver_from_annotation(self):
        index = build_index(
            {
                "src/pkg/w.py": (
                    "class Writer:\n"
                    "    def flush(self):\n"
                    "        return None\n"
                ),
                "src/pkg/a.py": (
                    "from pkg.w import Writer\n\n"
                    "def drain(writer: Writer):\n"
                    "    writer.flush()\n"
                ),
            }
        )
        module = index.modules["pkg.a"]
        function = module.functions["drain"]
        resolution = index.resolve_call(module, function, ("writer", "flush"))
        assert resolution.confident
        assert resolution.candidates == ["pkg.w::Writer.flush"]

    def test_unknown_receiver_falls_back_unconfident(self):
        index = build_index(
            {
                "src/pkg/x.py": (
                    "class A:\n"
                    "    def close(self):\n"
                    "        return None\n\n\n"
                    "class B:\n"
                    "    def close(self):\n"
                    "        return None\n"
                ),
                "src/pkg/a.py": (
                    "def shutdown(thing):\n    thing.close()\n"
                ),
            }
        )
        module = index.modules["pkg.a"]
        function = module.functions["shutdown"]
        resolution = index.resolve_call(module, function, ("thing", "close"))
        assert not resolution.confident
        assert sorted(resolution.candidates) == [
            "pkg.x::A.close",
            "pkg.x::B.close",
        ]

    def test_external_callable_resolves_empty_but_confident(self):
        index = build_index(
            {
                "src/pkg/a.py": (
                    "import json\n\n"
                    "def render(data):\n    return json.dumps(data)\n"
                )
            }
        )
        module = index.modules["pkg.a"]
        function = module.functions["render"]
        resolution = index.resolve_call(module, function, ("json", "dumps"))
        assert resolution.confident
        assert resolution.candidates == []


class TestReachability:
    def test_cycles_terminate(self):
        index = build_index(
            {
                "src/pkg/a.py": (
                    "def ping():\n    return pong()\n\n"
                    "def pong():\n    return ping()\n\n"
                    "def _worker_main():\n    return ping()\n"
                )
            }
        )
        reached = index.reachable_from(["pkg.a::_worker_main"])
        assert "pkg.a::ping" in reached
        assert "pkg.a::pong" in reached
        assert reached["pkg.a::ping"] == "pkg.a::_worker_main"

    def test_unconfident_edges_not_traversed(self):
        index = build_index(
            {
                "src/pkg/x.py": (
                    "class A:\n"
                    "    def close(self):\n"
                    "        return None\n\n\n"
                    "class B:\n"
                    "    def close(self):\n"
                    "        return None\n"
                ),
                "src/pkg/a.py": (
                    "def _worker_main(thing):\n    thing.close()\n"
                ),
            }
        )
        reached = index.reachable_from(["pkg.a::_worker_main"])
        assert "pkg.x::A.close" not in reached
        assert "pkg.x::B.close" not in reached


class TestAllocationsReachable:
    FILES = {
        "src/pkg/a.py": (
            "import numpy as np\n\n\n"
            "def depth3():\n    return np.zeros(8)\n\n\n"
            "def depth2():\n    return depth3()\n\n\n"
            "def depth1():\n    return depth2()\n\n\n"
            "def entry():\n    return depth1()\n"
        )
    }

    def test_found_within_depth(self):
        index = build_index(self.FILES)
        found = index.allocations_reachable("pkg.a::entry", "numpy")
        assert found is not None
        owner, allocation = found
        assert owner == "pkg.a::depth3"
        assert allocation["detail"] == "np.zeros"

    def test_depth_bound_cuts_off(self):
        index = build_index(self.FILES)
        assert (
            index.allocations_reachable(
                "pkg.a::entry", "numpy", max_depth=2
            )
            is None
        )


class TestModuleFacts:
    def test_protocol_constants_both_scopes(self):
        index = build_index(
            {
                "src/pkg/a.py": (
                    "WAL_MAGIC = b'W1'\n\n\n"
                    "class Reader:\n"
                    "    WAL_MAGIC = b'W0'\n"
                )
            }
        )
        records = index.modules["pkg.a"].protocol_constants
        assert {r["scope"] for r in records} == {"module", "class Reader"}
        assert {r["value_repr"] for r in records} == {"b'W1'", "b'W0'"}

    def test_mutable_globals_track_emptiness(self):
        index = build_index(
            {
                "src/pkg/a.py": (
                    "_CACHE = {}\n"
                    "_TABLE = {'a': 1}\n"
                    "__all__ = []\n"
                )
            }
        )
        mutable = index.modules["pkg.a"].mutable_globals
        assert mutable["_CACHE"]["empty"] is True
        assert mutable["_TABLE"]["empty"] is False
        assert "__all__" not in mutable

    def test_import_closure_follows_symbol_imports(self):
        index = build_index(
            {
                "src/pkg/b.py": "VALUE = 1\n",
                "src/pkg/a.py": (
                    "from pkg.b import VALUE\n\n"
                    "def use():\n    return VALUE\n"
                ),
            }
        )
        assert "pkg.b" in index.import_closure("pkg.a")


class TestSummaryRoundTrip:
    def test_to_dict_from_dict_preserves_facts(self):
        source = (
            "import numpy as np\n\n"
            "_CACHE = {}\n\n\n"
            "class Engine:\n"
            "    def step(self):\n"
            "        return np.zeros(4)\n"
        )
        tree = ast.parse(source)
        summary = summarize_module(
            "src/pkg/a.py", source, tree, CheckConfig()
        )
        clone = ModuleSummary.from_dict(summary.to_dict())
        assert clone.module == summary.module
        assert clone.mutable_globals == summary.mutable_globals
        assert set(clone.functions) == set(summary.functions)
        step = clone.functions["Engine.step"]
        assert step.qualname == "Engine.step"
        assert step.allocations == (
            summary.functions["Engine.step"].allocations
        )
