"""The JSON report format is a stable, versioned contract.

CI uploads these reports as artifacts; downstream tooling parses them,
so the shape asserted here is load-bearing: bump
``JSON_SCHEMA_VERSION`` when it changes.
"""

import json

from repro.devtools import Analyzer
from repro.devtools.diagnostics import (
    JSON_SCHEMA_VERSION,
    Diagnostic,
    diagnostics_to_json,
)

BAD_SOURCE = (
    '"""Doc."""\n'
    "import time\n\n\n"
    "def now() -> float:\n"
    '    """Doc."""\n'
    "    return time.time()\n"
)


def _report():
    report = Analyzer().check_source("bad.py", BAD_SOURCE)
    return json.loads(
        diagnostics_to_json(
            report.diagnostics, n_files=1, n_suppressed=report.n_suppressed
        )
    )


class TestSchema:
    def test_top_level_shape(self):
        payload = _report()
        assert set(payload) == {"version", "counts", "diagnostics"}
        assert payload["version"] == JSON_SCHEMA_VERSION

    def test_counts_block(self):
        counts = _report()["counts"]
        assert set(counts) == {
            "files", "diagnostics", "suppressed", "by_code",
        }
        assert counts["files"] == 1
        assert counts["diagnostics"] == 1
        assert counts["suppressed"] == 0
        assert counts["by_code"] == {"RPR104": 1}

    def test_diagnostic_entry_shape(self):
        (entry,) = _report()["diagnostics"]
        assert set(entry) == {"path", "line", "col", "code", "message"}
        assert entry["path"] == "bad.py"
        assert entry["code"] == "RPR104"
        assert isinstance(entry["line"], int)
        assert isinstance(entry["col"], int)

    def test_clean_report(self):
        payload = json.loads(
            diagnostics_to_json([], n_files=3, n_suppressed=2)
        )
        assert payload["counts"] == {
            "files": 3,
            "diagnostics": 0,
            "suppressed": 2,
            "by_code": {},
        }
        assert payload["diagnostics"] == []

    def test_entries_are_sorted(self):
        diagnostics = [
            Diagnostic(path="b.py", line=1, col=0, code="RPR104", message="x"),
            Diagnostic(path="a.py", line=9, col=0, code="RPR104", message="x"),
            Diagnostic(path="a.py", line=2, col=0, code="RPR104", message="x"),
        ]
        payload = json.loads(
            diagnostics_to_json(
                sorted(diagnostics), n_files=2, n_suppressed=0
            )
        )
        keys = [(e["path"], e["line"]) for e in payload["diagnostics"]]
        assert keys == [("a.py", 2), ("a.py", 9), ("b.py", 1)]
