"""End-to-end integration tests: simulate → mine → train → detect →
map → evaluate, across detector types.

These use the tiny session dataset, so they assert plumbing and
directional quality (detections beat chance), not paper-level numbers
— the benchmarks own those.
"""

import numpy as np
import pytest

from repro.core.baselines import AutoencoderDetector
from repro.core.detector import LSTMAnomalyDetector
from repro.core.mapping import map_anomalies, warning_clusters
from repro.core.thresholds import sweep_thresholds
from repro.evaluation.metrics import best_operating_point
from repro.logs.templates import TemplateStore
from repro.timeutil import MONTH


@pytest.fixture(scope="module")
def flow(small_dataset):
    """Shared: store + one trained LSTM on month-0 normal logs."""
    dataset = small_dataset
    month0_end = dataset.start + MONTH
    normal = dataset.aggregate_messages(
        end=month0_end, normal_only=True
    )
    store = TemplateStore().fit(normal[:8000])
    detector = LSTMAnomalyDetector(
        store,
        vocabulary_capacity=160,
        window=6,
        hidden=(16, 16),
        id_dim=8,
        epochs=2,
        oversample_rounds=0,
        max_train_samples=3000,
        seed=0,
    ).fit(normal)
    return dataset, store, detector, month0_end


class TestLstmEndToEnd:
    def test_scores_whole_test_month(self, flow):
        dataset, _, detector, month0_end = flow
        for vpe in dataset.vpe_names:
            stream = detector.score(
                dataset.messages_between(vpe, month0_end, dataset.end)
            )
            assert len(stream) > 0
            assert np.all(np.isfinite(stream.scores))

    def test_detections_beat_chance(self, flow):
        """Precision at the operating point must beat the base rate of
        ticket periods in the timeline.

        The tiny trace's software update lands in the test month, so
        quality is asserted on the *unaffected* vPEs — the affected
        ones legitimately degrade without adaptation (that behaviour
        is covered by the pipeline tests and Figure 7 bench).
        """
        dataset, _, detector, month0_end = flow
        affected = dataset.updates[0].affected_vpes
        vpes = [v for v in dataset.vpe_names if v not in affected]
        assert vpes, "fixture must leave at least one vPE un-updated"
        streams = {
            vpe: detector.score(
                dataset.messages_between(vpe, month0_end, dataset.end)
            )
            for vpe in vpes
        }
        tickets = [
            t
            for t in dataset.tickets_for(start=month0_end)
            if t.vpe in set(vpes)
        ]
        assert tickets, "test trace must contain tickets"
        curve = sweep_thresholds(streams, tickets, n_thresholds=15)
        op = best_operating_point(curve)
        # Fraction of the month covered by predictive+infected periods
        # is a generous upper bound on chance precision.
        span = dataset.end - month0_end
        covered = sum(
            min(t.repair_time, dataset.end)
            - max(t.report_time - 86400.0, month0_end)
            for t in tickets
        )
        chance = min(covered / (span * len(vpes)), 1.0)
        assert op.f_measure > 0.3
        assert op.precision > chance

    def test_mapping_classifies_every_detection(self, flow):
        dataset, _, detector, month0_end = flow
        streams = {
            vpe: detector.score(
                dataset.messages_between(vpe, month0_end, dataset.end)
            )
            for vpe in dataset.vpe_names
        }
        tickets = dataset.tickets_for(start=month0_end)
        threshold = best_operating_point(
            sweep_thresholds(streams, tickets, n_thresholds=10)
        ).threshold
        detections = {
            vpe: warning_clusters(stream.anomalies(threshold))
            for vpe, stream in streams.items()
        }
        mapping = map_anomalies(detections, tickets)
        n_detections = sum(len(v) for v in detections.values())
        assert len(mapping.records) == n_detections

    def test_symptom_burst_is_hot(self, flow):
        """The messages inside a detected ticket's infected period
        should score hotter than the month's median."""
        dataset, _, detector, month0_end = flow
        tickets = [
            t
            for t in dataset.tickets_for(
                start=month0_end, include_duplicates=False
            )
            if not t.root_cause.is_predictable_by_schedule
        ]
        if not tickets:
            pytest.skip("no fault tickets in the tiny trace")
        scored_any = False
        for ticket in tickets:
            stream = detector.score(
                dataset.messages_between(
                    ticket.vpe, month0_end, dataset.end
                )
            )
            inside = (
                (stream.times >= ticket.report_time - 86400.0)
                & (stream.times <= ticket.repair_time)
            )
            if inside.sum() < 3:
                continue
            scored_any = True
            assert stream.scores[inside].max() > np.median(
                stream.scores
            )
        assert scored_any


class TestAutoencoderEndToEnd:
    def test_full_flow(self, small_dataset):
        dataset = small_dataset
        month0_end = dataset.start + MONTH
        normal = dataset.aggregate_messages(
            end=month0_end, normal_only=True
        )
        store = TemplateStore().fit(normal[:8000])
        # Small window and stride: at this trace's low message rate,
        # coarser windows space detections too far apart in time for
        # the warning-cluster rule to ever fire.
        detector = AutoencoderDetector(
            store,
            vocabulary_capacity=160,
            window=8,
            stride=2,
            epochs=4,
            max_train_windows=3000,
            seed=0,
        ).fit(normal)
        # Evaluate on the vPEs the test-month software update does not
        # touch (no adaptation in this minimal flow).
        affected = dataset.updates[0].affected_vpes
        vpes = [v for v in dataset.vpe_names if v not in affected]
        streams = {
            vpe: detector.score(
                dataset.messages_between(vpe, month0_end, dataset.end)
            )
            for vpe in vpes
        }
        tickets = [
            t
            for t in dataset.tickets_for(start=month0_end)
            if t.vpe in set(vpes)
        ]
        curve = sweep_thresholds(streams, tickets, n_thresholds=10)
        assert best_operating_point(curve).f_measure > 0.1


class TestStoreGrowthEndToEnd:
    def test_monthly_extend_keeps_model_valid(self, flow):
        """Growing the store past capacity folds ids to unknown
        instead of crashing the model."""
        dataset, store, detector, month0_end = flow
        before = store.vocabulary_size
        store.extend(
            dataset.aggregate_messages(
                start=month0_end, end=dataset.end, normal_only=True
            )[:5000]
        )
        assert store.vocabulary_size >= before
        stream = detector.score(
            dataset.messages_between(
                dataset.vpe_names[0], month0_end, dataset.end
            )
        )
        assert np.all(np.isfinite(stream.scores))
