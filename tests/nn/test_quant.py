"""Tests for repro.nn.quant (opt-in int8 inference).

Two contracts: the int8 archive codec round-trips through
``Sequential.save/load`` behind an explicit ``allow_cast`` opt-in, and
:class:`QuantizedModel` tracks the float64 reference closely enough
that thresholded anomaly decisions agree.  The float64 default path
must never be touched by any of it.
"""

import numpy as np
import pytest

from repro.core.detector import LSTMAnomalyDetector
from repro.core.stream import StreamScorer
from repro.logs.templates import TemplateStore
from repro.nn.quant import (
    SCALE_SUFFIX,
    QuantizedModel,
    dequantize_weights,
    quantize_weights,
)
from tests.core.test_online import cyclic_stream


def build_detector(cell="lstm"):
    train = cyclic_stream()
    store = TemplateStore().fit(train)
    return LSTMAnomalyDetector(
        store,
        vocabulary_capacity=16,
        window=4,
        hidden=(12, 12),
        id_dim=8,
        epochs=2,
        oversample_rounds=0,
        cell=cell,
        seed=0,
    ).fit(train)


@pytest.fixture(scope="module")
def detector():
    return build_detector()


def contexts(model, n=256, seed=0):
    rng = np.random.default_rng(seed)
    embedding = model.layers[0]
    return np.stack(
        [
            rng.integers(
                0, embedding.id_embedding.vocabulary, (n, 4)
            ),
            rng.integers(
                0, embedding.gap_embedding.vocabulary, (n, 4)
            ),
        ],
        axis=-1,
    )


class TestWeightCodec:
    def test_2d_tensors_become_int8_with_scales(self, detector):
        payload = quantize_weights(detector.model.get_weights())
        matrices = [
            key
            for key, value in payload.items()
            if getattr(value, "dtype", None) == np.int8
        ]
        assert matrices
        for key in matrices:
            assert key + SCALE_SUFFIX in payload
            assert int(np.abs(payload[key]).max()) <= 127

    def test_biases_stay_float(self, detector):
        payload = quantize_weights(detector.model.get_weights())
        biases = [
            key
            for key, value in detector.model.get_weights().items()
            if value.ndim == 1
        ]
        assert biases
        for key in biases:
            assert payload[key].dtype == np.float32

    def test_dequantize_inverts_within_scale(self, detector):
        weights = detector.model.get_weights()
        restored = dequantize_weights(quantize_weights(weights))
        assert set(restored) == set(weights)
        for key, value in weights.items():
            if value.ndim >= 2:
                scale = float(np.max(np.abs(value))) / 127
                assert np.allclose(
                    restored[key], value, atol=scale / 2 + 1e-12
                )

    def test_missing_scale_entry_rejected(self, detector):
        payload = quantize_weights(detector.model.get_weights())
        key = next(
            key
            for key, value in payload.items()
            if getattr(value, "dtype", None) == np.int8
        )
        del payload[key + SCALE_SUFFIX]
        with pytest.raises(ValueError, match="missing"):
            dequantize_weights(payload)


class TestArchiveRoundtrip:
    def test_int8_archive_demands_allow_cast(self, detector, tmp_path):
        path = str(tmp_path / "int8.npz")
        detector.model.save(path, quantize=True)
        fresh = detector.model.clone()
        with pytest.raises(ValueError, match="allow_cast"):
            fresh.load(path)

    def test_int8_archive_roundtrips_with_allow_cast(
        self, detector, tmp_path
    ):
        path = str(tmp_path / "int8.npz")
        detector.model.save(path, quantize=True)
        fresh = detector.model.clone()
        fresh.load(path, allow_cast=True)
        x = contexts(detector.model)
        reference = detector.model.predict(x)
        restored = fresh.predict(x)
        assert np.corrcoef(
            reference.ravel(), restored.ravel()
        )[0, 1] > 0.999

    def test_float_archive_still_loads_without_cast(
        self, detector, tmp_path
    ):
        path = str(tmp_path / "f64.npz")
        detector.model.save(path)
        fresh = detector.model.clone()
        fresh.load(path)
        x = contexts(detector.model)
        assert np.array_equal(
            detector.model.predict(x), fresh.predict(x)
        )


class TestQuantizedModel:
    @pytest.mark.parametrize("cell", ["lstm", "gru"])
    def test_tracks_float64_reference(self, cell):
        detector = (
            build_detector() if cell == "lstm" else build_detector(cell)
        )
        quantized = QuantizedModel.from_model(detector.model)
        x = contexts(detector.model)
        reference = detector.model.predict(x)
        logits = quantized.infer(x)
        assert logits.dtype == np.float32
        assert logits.shape == reference.shape
        assert float(np.max(np.abs(reference - logits))) < 0.05
        assert np.corrcoef(
            reference.ravel(), logits.ravel()
        )[0, 1] > 0.999

    def test_repeated_infer_is_deterministic(self, detector):
        quantized = QuantizedModel.from_model(detector.model)
        x = contexts(detector.model)
        first = quantized.infer(x).copy()
        assert np.array_equal(quantized.infer(x), first)

    def test_batch_size_does_not_change_results(self, detector):
        quantized = QuantizedModel.from_model(detector.model)
        x = contexts(detector.model, n=64)
        full = quantized.infer(x).copy()
        halves = np.concatenate(
            [quantized.infer(x[:32]).copy(), quantized.infer(x[32:])]
        )
        assert np.allclose(full, halves, atol=1e-5)

    def test_rejects_bad_context_shape(self, detector):
        quantized = QuantizedModel.from_model(detector.model)
        with pytest.raises(ValueError, match="contexts"):
            quantized.infer(np.zeros((4, 4), dtype=np.int64))

    def test_rejects_unsupported_stacks(self):
        class NotAModel:
            layers = []

        with pytest.raises(ValueError, match="detector stack"):
            QuantizedModel.from_model(NotAModel())

    def test_scales_exposed_per_tensor(self, detector):
        quantized = QuantizedModel.from_model(detector.model)
        assert all(
            scale > 0 for scale in quantized.scales.values()
        )
        assert any(".U" in key for key in quantized.scales)


class TestScorerIntegration:
    def test_quantized_scorer_rebuilds_on_weight_change(self, detector):
        scorer = StreamScorer(detector, quantized=True)
        first = scorer._quantized_model()
        assert scorer._quantized_model() is first  # cached
        detector.model.set_weights(detector.model.get_weights())
        assert scorer._quantized_model() is not first  # version bumped

    def test_quantized_scorer_decisions_track_float64(self, detector):
        stream = cyclic_stream(400)
        exact = StreamScorer(detector).observe_batch(stream).scores
        scorer = StreamScorer(detector, quantized=True)
        approx = scorer.observe_batch(stream).scores
        decided = np.isfinite(exact) & np.isfinite(approx)
        assert decided.sum() > 300
        # Threshold between the score levels, away from any atom.
        levels = np.unique(exact[decided])
        threshold = float(levels[-2:].mean())
        agreement = np.mean(
            (exact[decided] > threshold)
            == (approx[decided] > threshold)
        )
        assert agreement >= 0.99
