"""Tests for repro.nn.activations."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.activations import (
    get_activation,
    log_softmax,
    relu,
    relu_grad,
    sigmoid,
    sigmoid_grad,
    softmax,
    tanh,
    tanh_grad,
)

finite_arrays = arrays(
    np.float64,
    (7,),
    elements=st.floats(min_value=-50, max_value=50),
)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_extreme_values_stable(self):
        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0)
        assert np.all(np.isfinite(out))

    @given(finite_arrays)
    def test_range_and_monotonicity(self, x):
        out = sigmoid(np.sort(x))
        assert np.all((out >= 0) & (out <= 1))
        assert np.all(np.diff(out) >= 0)

    def test_gradient_matches_numerical(self):
        x = np.linspace(-3, 3, 11)
        eps = 1e-6
        numeric = (sigmoid(x + eps) - sigmoid(x - eps)) / (2 * eps)
        assert np.allclose(sigmoid_grad(sigmoid(x)), numeric, atol=1e-8)


class TestTanhRelu:
    def test_tanh_gradient(self):
        x = np.linspace(-2, 2, 9)
        eps = 1e-6
        numeric = (tanh(x + eps) - tanh(x - eps)) / (2 * eps)
        assert np.allclose(tanh_grad(tanh(x)), numeric, atol=1e-8)

    def test_relu_values(self):
        assert list(relu(np.array([-1.0, 0.0, 2.0]))) == [0.0, 0.0, 2.0]

    def test_relu_grad_from_output(self):
        out = relu(np.array([-1.0, 3.0]))
        assert list(relu_grad(out)) == [0.0, 1.0]


class TestSoftmax:
    @given(finite_arrays)
    def test_sums_to_one(self, x):
        assert softmax(x).sum() == pytest.approx(1.0)

    def test_shift_invariance(self):
        x = np.array([1.0, 2.0, 3.0])
        assert np.allclose(softmax(x), softmax(x + 100.0))

    def test_large_logits_stable(self):
        out = softmax(np.array([1e4, 0.0]))
        assert np.all(np.isfinite(out))

    def test_log_softmax_consistent(self):
        x = np.array([[0.5, -1.0, 2.0]])
        assert np.allclose(log_softmax(x), np.log(softmax(x)))


class TestRegistry:
    def test_known_names(self):
        for name in ("sigmoid", "tanh", "relu", "linear"):
            fn, grad = get_activation(name)
            assert callable(fn) and callable(grad)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            get_activation("swish")
