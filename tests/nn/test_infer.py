"""Tests for the inference-only forward path (``infer``).

The contract: ``layer.infer(x)`` returns exactly the values of
``layer.forward(x, training=False)`` (bitwise at float64), writes no
backward caches, and — at the :class:`Sequential` level — produces
row-wise results independent of how samples are batched (the batch-of-
one pad), which is what the streaming scorer's bitwise online/offline
parity rests on.
"""

import numpy as np
import pytest

from repro.logs.sequences import N_GAP_BUCKETS
from repro.nn import GRU, LSTM, Dense, Sequential, TupleEmbedding
from repro.nn.layers import Dropout, Embedding


def make_model(dtype=np.float64, vocabulary=32, window=6):
    return Sequential(
        [
            TupleEmbedding(
                vocabulary,
                N_GAP_BUCKETS,
                id_dim=10,
                gap_dim=3,
                name="embedding",
                dtype=dtype,
            ),
            LSTM(14, return_sequences=True, name="lstm1", dtype=dtype),
            GRU(12, name="lstm2", dtype=dtype),
            Dense(vocabulary, name="output", dtype=dtype),
        ],
        rng=np.random.default_rng(7),
    ).build((window, 2))


def make_inputs(n, vocabulary=32, window=6, seed=0):
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, vocabulary, (n, window))
    gaps = rng.integers(0, N_GAP_BUCKETS, (n, window))
    return np.stack([ids, gaps], axis=-1).astype(np.int64)


class TestLayerInfer:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_recurrent_infer_matches_forward(self, dtype):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((9, 7, 5)).astype(dtype)
        for cls in (LSTM, GRU):
            for return_sequences in (False, True):
                layer = cls(
                    8, return_sequences=return_sequences, dtype=dtype
                )
                layer.build((7, 5), np.random.default_rng(1))
                fwd = layer.forward(x, training=False)
                layer.clear_cache()
                inf = layer.infer(x)
                assert np.array_equal(fwd, inf)
                assert inf.dtype == np.dtype(dtype)
                # infer writes no BPTT cache
                assert layer._cache is None

    def test_dense_infer_matches_forward(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((5, 6))
        layer = Dense(4, activation="tanh")
        layer.build((6,), np.random.default_rng(2))
        fwd = layer.forward(x)
        layer.clear_cache()
        assert np.array_equal(layer.infer(x), fwd)
        assert layer._cache_x is None and layer._cache_out is None

    def test_embedding_infer_matches_forward_and_validates(self):
        layer = Embedding(10, 3)
        layer.build((4,), np.random.default_rng(0))
        ids = np.array([[1, 2, 3, 9]])
        fwd = layer.forward(ids)
        layer.clear_cache()
        assert np.array_equal(layer.infer(ids), fwd)
        assert layer._cache_ids is None
        with pytest.raises(ValueError):
            layer.infer(np.array([[10]]))

    def test_dropout_infer_is_identity(self):
        layer = Dropout(0.5)
        layer.build((3,), np.random.default_rng(0))
        x = np.ones((4, 3))
        assert layer.infer(x) is x


class TestSequentialInfer:
    def test_infer_matches_forward_bitwise(self):
        model = make_model()
        x = make_inputs(23)
        fwd = model.forward(x, training=False)
        model.clear_caches()
        inf = model.infer(x)
        assert np.array_equal(fwd, inf)
        # no layer retained a cache
        for layer in model.layers:
            layer.clear_cache()  # must be a no-op, not an error
        assert model.layers[1]._cache is None
        assert model.layers[3]._cache_x is None

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_batch_composition_independence(self, dtype):
        """Row results do not depend on how samples are batched.

        This includes the batch-of-one case, which the pad protects
        from BLAS's single-row gemv kernel (different accumulation
        order than the batched gemm kernels).
        """
        model = make_model(dtype=dtype)
        x = make_inputs(17)
        full = model.infer(x)
        for i in (0, 5, 16):
            single = model.infer(x[i:i + 1])
            assert np.array_equal(single[0], full[i])
        split = np.concatenate(
            [model.infer(x[:4]), model.infer(x[4:])]
        )
        assert np.array_equal(split, full)

    def test_predict_uses_inference_path(self):
        model = make_model()
        x = make_inputs(11)
        predicted = model.predict(x, batch_size=4)
        assert np.array_equal(predicted, model.infer(x))
        # a tail chunk of one row goes through the padded path too
        predicted_tail = model.predict(x, batch_size=10)
        assert np.array_equal(predicted_tail, predicted)
        assert model.layers[1]._cache is None

    def test_empty_batch(self):
        model = make_model()
        out = model.infer(make_inputs(0))
        assert out.shape == (0, 32)
