"""Tests for repro.nn.optimizers."""

import numpy as np
import pytest

from repro.nn.optimizers import SGD, Adam, RMSprop


def quadratic_descend(optimizer, steps=200, start=5.0):
    """Minimize f(x) = x^2 with the given optimizer."""
    x = np.array([start])
    for _ in range(steps):
        grad = 2.0 * x
        optimizer.step([("x", x, grad.copy())])
    return float(x[0])


class TestSGD:
    def test_plain_descends_quadratic(self):
        assert abs(quadratic_descend(SGD(0.1))) < 1e-3

    def test_momentum_descends_quadratic(self):
        assert abs(quadratic_descend(SGD(0.05, momentum=0.9))) < 1e-2

    def test_single_step_exact(self):
        x = np.array([1.0])
        SGD(0.5).step([("x", x, np.array([2.0]))])
        assert x[0] == pytest.approx(0.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SGD(0.0)
        with pytest.raises(ValueError):
            SGD(0.1, momentum=1.0)

    def test_reset_clears_velocity(self):
        optimizer = SGD(0.1, momentum=0.9)
        x = np.array([1.0])
        optimizer.step([("x", x, np.array([1.0]))])
        optimizer.reset()
        assert optimizer._velocity == {}


class TestRMSprop:
    def test_descends_quadratic(self):
        # RMSprop normalizes gradient magnitude, so near the optimum it
        # hovers within roughly one learning-rate of it.
        assert abs(quadratic_descend(RMSprop(0.05), steps=500)) < 0.05

    def test_slot_state_per_key(self):
        optimizer = RMSprop(0.01)
        a, b = np.array([1.0]), np.array([1.0])
        optimizer.step([("a", a, np.array([1.0]))])
        optimizer.step([("b", b, np.array([1.0]))])
        assert set(optimizer._second_moment) == {"a", "b"}


class TestAdam:
    def test_descends_quadratic(self):
        assert abs(quadratic_descend(Adam(0.1), steps=500)) < 1e-3

    def test_bias_correction_first_step(self):
        # With bias correction, the first Adam step is ~learning_rate
        # regardless of gradient magnitude.
        for scale in (1e-3, 1.0, 1e3):
            x = np.array([0.0])
            Adam(0.01, clip_norm=1e12).step(
                [("x", x, np.array([scale]))]
            )
            assert x[0] == pytest.approx(-0.01, rel=1e-3)

    def test_reset_clears_state(self):
        optimizer = Adam(0.01)
        x = np.array([1.0])
        optimizer.step([("x", x, np.array([1.0]))])
        optimizer.reset()
        assert optimizer._steps == {}


class TestClipping:
    def test_large_gradient_clipped(self):
        optimizer = SGD(1.0, clip_norm=1.0)
        x = np.array([0.0])
        optimizer.step([("x", x, np.array([100.0]))])
        # gradient clipped to norm 1 -> step of exactly -1
        assert x[0] == pytest.approx(-1.0, rel=1e-6)

    def test_small_gradient_untouched(self):
        optimizer = SGD(1.0, clip_norm=10.0)
        x = np.array([0.0])
        optimizer.step([("x", x, np.array([0.5]))])
        assert x[0] == pytest.approx(-0.5)

    def test_clip_is_global_across_params(self):
        optimizer = SGD(1.0, clip_norm=1.0)
        a, b = np.array([0.0]), np.array([0.0])
        optimizer.step([
            ("a", a, np.array([3.0])),
            ("b", b, np.array([4.0])),
        ])
        # ||(3,4)|| = 5 -> scaled by 1/5
        assert a[0] == pytest.approx(-0.6)
        assert b[0] == pytest.approx(-0.8)
