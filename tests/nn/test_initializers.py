"""Tests for repro.nn.initializers."""

import numpy as np

from repro.nn.initializers import (
    glorot_uniform,
    orthogonal,
    uniform_scaled,
    zeros,
)


class TestZeros:
    def test_all_zero(self):
        assert not zeros((3, 4)).any()


class TestGlorot:
    def test_bounds(self):
        rng = np.random.default_rng(0)
        w = glorot_uniform((100, 50), rng)
        limit = np.sqrt(6.0 / 150)
        assert np.all(np.abs(w) <= limit)

    def test_deterministic_given_seed(self):
        a = glorot_uniform((5, 5), np.random.default_rng(3))
        b = glorot_uniform((5, 5), np.random.default_rng(3))
        assert np.array_equal(a, b)


class TestOrthogonal:
    def test_square_is_orthogonal(self):
        q = orthogonal((16, 16), np.random.default_rng(1))
        assert np.allclose(q @ q.T, np.eye(16), atol=1e-10)

    def test_rectangular_columns_orthonormal(self):
        q = orthogonal((20, 8), np.random.default_rng(1))
        assert np.allclose(q.T @ q, np.eye(8), atol=1e-10)


class TestUniformScaled:
    def test_scale_respected(self):
        w = uniform_scaled((50, 10), np.random.default_rng(2), scale=0.1)
        assert np.all(np.abs(w) <= 0.1)
