"""Tests for repro.nn.model (Sequential container)."""

import numpy as np
import pytest

from repro.nn import (
    LSTM,
    Adam,
    Dense,
    MeanSquaredError,
    Sequential,
    SGD,
    SoftmaxCrossEntropy,
    TupleEmbedding,
)
from repro.nn.model import batches


def small_classifier(seed=0):
    model = Sequential(
        [
            Dense(16, activation="tanh", name="hidden"),
            Dense(3, name="out"),
        ],
        rng=np.random.default_rng(seed),
    )
    return model.build((4,))


def toy_data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 4))
    y = (x[:, 0] + x[:, 1] > 0).astype(np.int64) + (
        x[:, 2] > 1.0
    ).astype(np.int64)
    return x, y


class TestBatches:
    def test_covers_everything_once(self):
        seen = np.concatenate(list(batches(10, 3)))
        assert sorted(seen) == list(range(10))

    def test_shuffled_with_rng(self):
        a = np.concatenate(list(batches(100, 7, np.random.default_rng(0))))
        assert sorted(a) == list(range(100))
        assert not np.array_equal(a, np.arange(100))

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(batches(10, 0))


class TestConstruction:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Sequential([Dense(2, name="a"), Dense(2, name="a")])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_forward_before_build_raises(self):
        model = Sequential([Dense(2)])
        with pytest.raises(RuntimeError):
            model.forward(np.zeros((1, 3)))

    def test_n_parameters(self):
        model = small_classifier()
        # 4*16+16 + 16*3+3
        assert model.n_parameters == 80 + 51


class TestTraining:
    def test_fit_reduces_loss(self):
        model = small_classifier()
        x, y = toy_data()
        history = model.fit(
            x, y, SoftmaxCrossEntropy(), Adam(0.01), epochs=15,
            batch_size=32,
        )
        assert history[-1] < history[0] * 0.7

    def test_fit_shape_mismatch(self):
        model = small_classifier()
        with pytest.raises(ValueError):
            model.fit(
                np.zeros((5, 4)), np.zeros(4), SoftmaxCrossEntropy(),
                SGD(0.1),
            )

    def test_sample_weights_zero_freeze_learning(self):
        model = small_classifier()
        x, y = toy_data(50)
        before = model.get_weights()
        model.fit(
            x, y, SoftmaxCrossEntropy(), SGD(0.5), epochs=2,
            sample_weight=np.zeros(50),
        )
        after = model.get_weights()
        for key in before:
            assert np.allclose(before[key], after[key])

    def test_predict_batches_consistent(self):
        model = small_classifier()
        x, _ = toy_data(100)
        full = model.predict(x, batch_size=100)
        chunked = model.predict(x, batch_size=7)
        assert np.allclose(full, chunked)

    def test_deterministic_given_seed(self):
        x, y = toy_data(100)
        outs = []
        for _ in range(2):
            model = small_classifier(seed=5)
            model.fit(
                x, y, SoftmaxCrossEntropy(), Adam(0.01), epochs=3
            )
            outs.append(model.predict(x[:5]))
        assert np.allclose(outs[0], outs[1])


class TestFreezing:
    def test_frozen_layer_not_updated(self):
        model = small_classifier()
        x, y = toy_data(50)
        model.freeze(["hidden"])
        before = model.get_weights()
        model.fit(x, y, SoftmaxCrossEntropy(), SGD(0.5), epochs=2)
        after = model.get_weights()
        assert np.allclose(before["hidden.W"], after["hidden.W"])
        assert not np.allclose(before["out.W"], after["out.W"])

    def test_unfreeze_restores_training(self):
        model = small_classifier()
        x, y = toy_data(50)
        model.freeze(["hidden"])
        model.unfreeze(["hidden"])
        before = model.get_weights()["hidden.W"].copy()
        model.fit(x, y, SoftmaxCrossEntropy(), SGD(0.5), epochs=2)
        assert not np.allclose(before, model.get_weights()["hidden.W"])

    def test_unknown_layer_name(self):
        model = small_classifier()
        with pytest.raises(KeyError):
            model.freeze(["nope"])


class TestCloneAndPersistence:
    def test_clone_is_independent(self):
        model = small_classifier()
        x, y = toy_data(50)
        twin = model.clone()
        model.fit(x, y, SoftmaxCrossEntropy(), SGD(0.5), epochs=2)
        # twin unchanged by teacher training
        assert not np.allclose(
            model.get_weights()["out.W"], twin.get_weights()["out.W"]
        )

    def test_clone_same_predictions(self):
        model = small_classifier()
        x, _ = toy_data(10)
        twin = model.clone()
        assert np.allclose(model.predict(x), twin.predict(x))

    def test_save_load_roundtrip(self, tmp_path):
        model = small_classifier()
        x, y = toy_data(50)
        model.fit(x, y, SoftmaxCrossEntropy(), Adam(0.01), epochs=2)
        path = str(tmp_path / "weights.npz")
        model.save(path)
        fresh = small_classifier(seed=99)
        assert not np.allclose(fresh.predict(x), model.predict(x))
        fresh.load(path)
        assert np.allclose(fresh.predict(x), model.predict(x))

    def test_set_weights_missing_key(self):
        model = small_classifier()
        with pytest.raises(KeyError):
            model.set_weights({})

    def test_set_weights_shape_mismatch(self):
        model = small_classifier()
        weights = model.get_weights()
        weights["out.W"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.set_weights(weights)

    def test_tuple_embedding_save_load_keeps_sharing(self, tmp_path):
        model = Sequential(
            [
                TupleEmbedding(6, 3, id_dim=4, gap_dim=2,
                               name="embedding"),
                LSTM(5, name="lstm"),
                Dense(6, name="out"),
            ],
            rng=np.random.default_rng(0),
        ).build((4, 2))
        path = str(tmp_path / "w.npz")
        model.save(path)
        model.load(path)
        layer = model.layers[0]
        assert layer.params["ids.E"] is layer.id_embedding.params["E"]


class TestWeightFormat:
    def test_archive_carries_tags(self, tmp_path):
        from repro.nn.model import (
            _DTYPE_KEY,
            _FORMAT_KEY,
            WEIGHTS_FORMAT_VERSION,
        )

        model = small_classifier()
        path = str(tmp_path / "w.npz")
        model.save(path)
        with np.load(path) as archive:
            assert int(archive[_FORMAT_KEY]) == WEIGHTS_FORMAT_VERSION
            assert str(archive[_DTYPE_KEY]) == "float64"

    def test_legacy_untagged_archive_loads(self, tmp_path):
        model = small_classifier()
        x, y = toy_data(50)
        model.fit(x, y, SoftmaxCrossEntropy(), Adam(0.01), epochs=1)
        path = str(tmp_path / "legacy.npz")
        np.savez(path, **model.get_weights())  # pre-versioning layout
        fresh = small_classifier(seed=99)
        fresh.load(path)
        assert np.allclose(fresh.predict(x), model.predict(x))

    def test_unknown_format_version_rejected(self, tmp_path):
        from repro.nn.model import _FORMAT_KEY

        model = small_classifier()
        path = str(tmp_path / "future.npz")
        payload = model.get_weights()
        payload[_FORMAT_KEY] = np.array(999, dtype=np.int64)
        np.savez(path, **payload)
        with pytest.raises(ValueError, match="format version 999"):
            small_classifier().load(path)

    def test_dtype_mismatch_rejected_unless_cast(self, tmp_path):
        from repro.nn.model import _DTYPE_KEY, _FORMAT_KEY
        from repro.nn.model import WEIGHTS_FORMAT_VERSION

        model = small_classifier()
        path = str(tmp_path / "f32.npz")
        payload = model.get_weights()
        payload[_FORMAT_KEY] = np.array(
            WEIGHTS_FORMAT_VERSION, dtype=np.int64
        )
        payload[_DTYPE_KEY] = np.array("float32")
        np.savez(path, **payload)
        target = small_classifier()
        with pytest.raises(ValueError, match="float32"):
            target.load(path)
        target.load(path, allow_cast=True)
        assert np.allclose(
            target.get_weights()["out.W"],
            model.get_weights()["out.W"],
        )
