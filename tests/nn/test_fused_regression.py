"""Regression tests: fused BPTT vs the pre-refactor per-step loops.

The LSTM/GRU hot paths were rewritten from Python-list per-step loops
into fused preallocated-buffer kernels.  These tests pin the contract
that rewrite made: at the float64 default the fused forward is
*bitwise identical* to the original loop (addition order preserved,
elementwise activations sliced identically), and the backward
parameter gradients agree to summation-order rounding.

The reference implementations below are self-contained transcriptions
of the seed code (growth seed commit), independent of the live layers.
"""

import numpy as np
import pytest

from repro.nn.gru import GRU
from repro.nn.lstm import LSTM


def _seed_sigmoid(x):
    """The seed's masked stable sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def _seed_lstm(params, x, grad_last):
    """Seed LSTM forward + backward (per-step list loop), f64.

    Returns (hiddens stacked (batch, steps, hidden), grads dict, dx)
    for a gradient injected at the last step only.
    """
    weight, recurrent, bias = params["W"], params["U"], params["b"]
    batch, steps, _ = x.shape
    hidden = bias.shape[0] // 4
    h_prev = np.zeros((batch, hidden))
    c_prev = np.zeros((batch, hidden))
    cache = {k: [] for k in ("i", "f", "g", "o", "c", "h_prev", "c_prev")}
    hiddens = []
    for step in range(steps):
        z = x[:, step, :] @ weight + h_prev @ recurrent + bias
        gate_i = _seed_sigmoid(z[:, :hidden])
        gate_f = _seed_sigmoid(z[:, hidden:2 * hidden])
        gate_g = np.tanh(z[:, 2 * hidden:3 * hidden])
        gate_o = _seed_sigmoid(z[:, 3 * hidden:])
        cache["h_prev"].append(h_prev)
        cache["c_prev"].append(c_prev)
        c_prev = gate_f * c_prev + gate_i * gate_g
        h_prev = gate_o * np.tanh(c_prev)
        for key, value in zip(
            ("i", "f", "g", "o", "c"),
            (gate_i, gate_f, gate_g, gate_o, c_prev),
        ):
            cache[key].append(value)
        hiddens.append(h_prev)

    grads = {
        "W": np.zeros_like(weight),
        "U": np.zeros_like(recurrent),
        "b": np.zeros_like(bias),
    }
    dx = np.zeros_like(x, dtype=np.float64)
    step_grads = np.zeros((batch, steps, hidden))
    step_grads[:, -1, :] = grad_last
    dh_next = np.zeros((batch, hidden))
    dc_next = np.zeros((batch, hidden))
    for step in range(steps - 1, -1, -1):
        gate_i, gate_f, gate_g, gate_o = (
            cache[k][step] for k in ("i", "f", "g", "o")
        )
        dh = step_grads[:, step, :] + dh_next
        tanh_cell = np.tanh(cache["c"][step])
        d_o = dh * tanh_cell
        dc = dh * gate_o * (1.0 - tanh_cell * tanh_cell) + dc_next
        d_f = dc * cache["c_prev"][step]
        d_i = dc * gate_g
        d_g = dc * gate_i
        dz = np.concatenate(
            [
                d_i * gate_i * (1.0 - gate_i),
                d_f * gate_f * (1.0 - gate_f),
                d_g * (1.0 - gate_g * gate_g),
                d_o * gate_o * (1.0 - gate_o),
            ],
            axis=1,
        )
        grads["W"] += x[:, step, :].T @ dz
        grads["U"] += cache["h_prev"][step].T @ dz
        grads["b"] += dz.sum(axis=0)
        dx[:, step, :] = dz @ weight.T
        dh_next = dz @ recurrent.T
        dc_next = dc * gate_f
    return np.stack(hiddens, axis=1), grads, dx


def _seed_gru(params, x, grad_last):
    """Seed GRU forward + backward (per-step list loop), f64."""
    weight, recurrent, bias = params["W"], params["U"], params["b"]
    batch, steps, _ = x.shape
    hidden = bias.shape[0] // 3
    h_prev = np.zeros((batch, hidden))
    cache = {k: [] for k in ("z", "r", "c", "h_prev")}
    hiddens = []
    for step in range(steps):
        x_proj = x[:, step, :] @ weight + bias
        h_proj_zr = h_prev @ recurrent[:, :2 * hidden]
        gate_z = _seed_sigmoid(x_proj[:, :hidden] + h_proj_zr[:, :hidden])
        gate_r = _seed_sigmoid(
            x_proj[:, hidden:2 * hidden]
            + h_proj_zr[:, hidden:2 * hidden]
        )
        candidate = np.tanh(
            x_proj[:, 2 * hidden:]
            + (gate_r * h_prev) @ recurrent[:, 2 * hidden:]
        )
        cache["h_prev"].append(h_prev)
        h_prev = gate_z * h_prev + (1.0 - gate_z) * candidate
        for key, value in zip(
            ("z", "r", "c"), (gate_z, gate_r, candidate)
        ):
            cache[key].append(value)
        hiddens.append(h_prev)

    grads = {
        "W": np.zeros_like(weight),
        "U": np.zeros_like(recurrent),
        "b": np.zeros_like(bias),
    }
    dx = np.zeros_like(x, dtype=np.float64)
    step_grads = np.zeros((batch, steps, hidden))
    step_grads[:, -1, :] = grad_last
    dh_next = np.zeros((batch, hidden))
    u_z = recurrent[:, :hidden]
    u_r = recurrent[:, hidden:2 * hidden]
    u_h = recurrent[:, 2 * hidden:]
    for step in range(steps - 1, -1, -1):
        gate_z = cache["z"][step]
        gate_r = cache["r"][step]
        candidate = cache["c"][step]
        h_prev = cache["h_prev"][step]

        dh = step_grads[:, step, :] + dh_next
        d_candidate = dh * (1.0 - gate_z)
        d_z = dh * (h_prev - candidate)
        dh_prev = dh * gate_z

        d_pre_candidate = d_candidate * (1.0 - candidate * candidate)
        d_rh = d_pre_candidate @ u_h.T
        d_r = d_rh * h_prev
        dh_prev += d_rh * gate_r

        d_pre_z = d_z * gate_z * (1.0 - gate_z)
        d_pre_r = d_r * gate_r * (1.0 - gate_r)
        d_pre = np.concatenate(
            [d_pre_z, d_pre_r, d_pre_candidate], axis=1
        )
        grads["W"] += x[:, step, :].T @ d_pre
        grads["b"] += d_pre.sum(axis=0)
        grads["U"][:, :hidden] += h_prev.T @ d_pre_z
        grads["U"][:, hidden:2 * hidden] += h_prev.T @ d_pre_r
        grads["U"][:, 2 * hidden:] += (
            (gate_r * h_prev).T @ d_pre_candidate
        )
        dx[:, step, :] = d_pre @ weight.T
        dh_prev += d_pre_z @ u_z.T + d_pre_r @ u_r.T
        dh_next = dh_prev
    return np.stack(hiddens, axis=1), grads, dx


CASES = [
    (LSTM, _seed_lstm),
    (GRU, _seed_gru),
]


def _fused_layer(layer_cls, return_sequences, dtype=np.float64):
    layer = layer_cls(6, return_sequences=return_sequences, dtype=dtype)
    layer.build((9, 5), np.random.default_rng(11))
    return layer


def _input(dtype=np.float64):
    rng = np.random.default_rng(42)
    x = rng.standard_normal((4, 9, 5))
    grad = rng.standard_normal((4, 6))
    return x.astype(dtype), grad.astype(dtype)


class TestFusedMatchesSeedLoop:
    @pytest.mark.parametrize("layer_cls,seed_fn", CASES)
    @pytest.mark.parametrize("return_sequences", [False, True])
    def test_forward_bitwise_identical_f64(
        self, layer_cls, seed_fn, return_sequences
    ):
        layer = _fused_layer(layer_cls, return_sequences)
        x, grad = _input()
        got = layer.forward(x)
        ref_seq, _, _ = seed_fn(layer.params, x, grad)
        want = ref_seq if return_sequences else ref_seq[:, -1]
        assert got.dtype == np.float64
        # Bitwise, not merely close: the fused rewrite preserves
        # addition order, so any drift is a real behavior change.
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("layer_cls,seed_fn", CASES)
    def test_backward_grads_match_seed_loop(self, layer_cls, seed_fn):
        layer = _fused_layer(layer_cls, return_sequences=False)
        x, grad = _input()
        layer.forward(x)
        dx = layer.backward(grad)
        _, ref_grads, ref_dx = seed_fn(layer.params, x, grad)
        # The fused backward accumulates parameter gradients with a
        # few large matmuls, which permutes the summation order, so
        # equality holds to rounding rather than bitwise.
        np.testing.assert_allclose(dx, ref_dx, rtol=1e-10, atol=1e-12)
        for key in ("W", "U", "b"):
            np.testing.assert_allclose(
                layer.grads[key], ref_grads[key], rtol=1e-10, atol=1e-12
            )

    @pytest.mark.parametrize("layer_cls,seed_fn", CASES)
    def test_float32_fast_path_tracks_f64(self, layer_cls, seed_fn):
        layer = _fused_layer(layer_cls, False, dtype=np.float32)
        x64, grad = _input()
        got = layer.forward(x64.astype(np.float32))
        assert got.dtype == np.float32
        ref_seq, _, _ = seed_fn(
            {k: v.astype(np.float64) for k, v in layer.params.items()},
            x64,
            grad,
        )
        np.testing.assert_allclose(
            got, ref_seq[:, -1], rtol=2e-4, atol=2e-5
        )
