"""Tests for repro.nn.gru, including full BPTT gradient checks."""

import numpy as np
import pytest

from repro.nn.gru import GRU


def build(layer, shape, seed=0):
    return layer.build(shape, np.random.default_rng(seed))


class TestShapes:
    def test_last_state_output(self):
        layer = GRU(6)
        assert build(layer, (5, 3)) == (6,)
        assert layer.forward(np.zeros((2, 5, 3))).shape == (2, 6)

    def test_sequence_output(self):
        layer = GRU(6, return_sequences=True)
        assert build(layer, (5, 3)) == (5, 6)
        assert layer.forward(np.zeros((2, 5, 3))).shape == (2, 5, 6)

    def test_rejects_bad_input(self):
        layer = GRU(6)
        build(layer, (5, 3))
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            build(GRU(6), (3,))

    def test_invalid_hidden(self):
        with pytest.raises(ValueError):
            GRU(0)

    def test_fewer_parameters_than_lstm(self):
        from repro.nn.lstm import LSTM
        gru = GRU(8)
        lstm = LSTM(8)
        build(gru, (5, 4))
        build(lstm, (5, 4))
        gru_params = sum(p.size for p in gru.params.values())
        lstm_params = sum(p.size for p in lstm.params.values())
        assert gru_params == pytest.approx(0.75 * lstm_params, rel=0.01)


class TestForwardSemantics:
    def test_zero_everything_gives_zero_state(self):
        """With zero input, zero bias and zero initial state, the
        candidate is 0 and h stays 0."""
        layer = GRU(4)
        build(layer, (6, 3))
        out = layer.forward(np.zeros((1, 6, 3)))
        assert np.allclose(out, 0.0)

    def test_state_bounded(self):
        layer = GRU(4)
        build(layer, (20, 3))
        rng = np.random.default_rng(0)
        out = layer.forward(rng.standard_normal((2, 20, 3)) * 5)
        assert np.all(np.abs(out) <= 1.0)

    def test_batch_independence(self):
        layer = GRU(4)
        build(layer, (5, 3))
        rng = np.random.default_rng(0)
        a = rng.standard_normal((1, 5, 3))
        b = rng.standard_normal((1, 5, 3))
        together = layer.forward(np.concatenate([a, b]))
        alone = layer.forward(a)
        assert np.allclose(together[0], alone[0])


def _numeric_check(return_sequences):
    rng = np.random.default_rng(1)
    layer = GRU(5, return_sequences=return_sequences)
    build(layer, (4, 3), seed=2)
    x = rng.standard_normal((2, 4, 3))
    if return_sequences:
        grad_out = rng.standard_normal((2, 4, 5))
    else:
        grad_out = rng.standard_normal((2, 5))

    layer.zero_grads()
    layer.forward(x)
    grad_in = layer.backward(grad_out)

    eps = 1e-6

    def objective():
        return float(np.sum(layer.forward(x) * grad_out))

    for key in ("W", "U", "b"):
        param = layer.params[key].reshape(-1)
        grads = layer.grads[key].reshape(-1)
        for index in range(0, param.size, max(param.size // 25, 1)):
            orig = param[index]
            param[index] = orig + eps
            up = objective()
            param[index] = orig - eps
            down = objective()
            param[index] = orig
            assert grads[index] == pytest.approx(
                (up - down) / (2 * eps), rel=1e-4, abs=1e-7
            ), f"{key}[{index}]"

    flat_x = x.reshape(-1)
    flat_grad_in = grad_in.reshape(-1)
    for index in range(0, flat_x.size, 3):
        orig = flat_x[index]
        flat_x[index] = orig + eps
        up = objective()
        flat_x[index] = orig - eps
        down = objective()
        flat_x[index] = orig
        assert flat_grad_in[index] == pytest.approx(
            (up - down) / (2 * eps), rel=1e-4, abs=1e-7
        )


class TestBackward:
    def test_gradients_last_state(self):
        _numeric_check(return_sequences=False)

    def test_gradients_sequences(self):
        _numeric_check(return_sequences=True)

    def test_backward_before_forward_raises(self):
        layer = GRU(3)
        build(layer, (4, 2))
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 3)))


class TestLearning:
    def test_learns_a_simple_sequence_task(self):
        """GRU + Dense learns to classify by last input sign."""
        from repro.nn import Adam, Dense, Sequential, SoftmaxCrossEntropy

        rng = np.random.default_rng(0)
        x = rng.standard_normal((400, 6, 2))
        y = (x[:, -1, 0] > 0).astype(np.int64)
        model = Sequential(
            [GRU(8, name="gru"), Dense(2, name="out")],
            rng=np.random.default_rng(1),
        ).build((6, 2))
        history = model.fit(
            x, y, SoftmaxCrossEntropy(), Adam(0.01), epochs=10,
        )
        assert history[-1] < history[0] * 0.5
        accuracy = (model.predict(x).argmax(axis=1) == y).mean()
        assert accuracy > 0.9
