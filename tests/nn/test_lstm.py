"""Tests for repro.nn.lstm, including full BPTT gradient checks."""

import numpy as np
import pytest

from repro.nn.lstm import LSTM


def build(layer, shape, seed=0):
    return layer.build(shape, np.random.default_rng(seed))


class TestShapes:
    def test_last_state_output(self):
        layer = LSTM(6)
        assert build(layer, (5, 3)) == (6,)
        out = layer.forward(np.zeros((2, 5, 3)))
        assert out.shape == (2, 6)

    def test_sequence_output(self):
        layer = LSTM(6, return_sequences=True)
        assert build(layer, (5, 3)) == (5, 6)
        out = layer.forward(np.zeros((2, 5, 3)))
        assert out.shape == (2, 5, 6)

    def test_rejects_2d_input(self):
        layer = LSTM(6)
        build(layer, (5, 3))
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 3)))

    def test_rejects_bad_build_shape(self):
        with pytest.raises(ValueError):
            build(LSTM(6), (3,))

    def test_invalid_hidden(self):
        with pytest.raises(ValueError):
            LSTM(0)


class TestForwardSemantics:
    def test_forget_bias_initialized_to_one(self):
        layer = LSTM(4)
        build(layer, (2, 3))
        bias = layer.params["b"]
        assert np.all(bias[4:8] == 1.0)
        assert np.all(bias[:4] == 0.0)

    def test_zero_input_zero_recurrent_state_bounded(self):
        layer = LSTM(4)
        build(layer, (10, 3))
        out = layer.forward(np.zeros((1, 10, 3)))
        assert np.all(np.abs(out) < 1.0)

    def test_state_evolves_over_time(self):
        layer = LSTM(4, return_sequences=True)
        build(layer, (6, 2))
        x = np.ones((1, 6, 2))
        out = layer.forward(x)
        # hidden state should change step to step on constant input
        assert not np.allclose(out[0, 0], out[0, -1])

    def test_batch_independence(self):
        layer = LSTM(4)
        build(layer, (5, 3))
        rng = np.random.default_rng(0)
        a = rng.standard_normal((1, 5, 3))
        b = rng.standard_normal((1, 5, 3))
        together = layer.forward(np.concatenate([a, b]))
        alone = layer.forward(a)
        assert np.allclose(together[0], alone[0])


def _numeric_check(return_sequences):
    rng = np.random.default_rng(1)
    layer = LSTM(5, return_sequences=return_sequences)
    build(layer, (4, 3), seed=2)
    x = rng.standard_normal((2, 4, 3))
    if return_sequences:
        grad_out = rng.standard_normal((2, 4, 5))
    else:
        grad_out = rng.standard_normal((2, 5))

    layer.zero_grads()
    layer.forward(x)
    grad_in = layer.backward(grad_out)

    eps = 1e-6

    def objective():
        return float(np.sum(layer.forward(x) * grad_out))

    for key in ("W", "U", "b"):
        param = layer.params[key].reshape(-1)
        grads = layer.grads[key].reshape(-1)
        for index in range(0, param.size, max(param.size // 25, 1)):
            orig = param[index]
            param[index] = orig + eps
            up = objective()
            param[index] = orig - eps
            down = objective()
            param[index] = orig
            assert grads[index] == pytest.approx(
                (up - down) / (2 * eps), rel=1e-4, abs=1e-7
            ), f"{key}[{index}]"

    flat_x = x.reshape(-1)
    flat_grad_in = grad_in.reshape(-1)
    for index in range(0, flat_x.size, 3):
        orig = flat_x[index]
        flat_x[index] = orig + eps
        up = objective()
        flat_x[index] = orig - eps
        down = objective()
        flat_x[index] = orig
        assert flat_grad_in[index] == pytest.approx(
            (up - down) / (2 * eps), rel=1e-4, abs=1e-7
        )


class TestBackward:
    def test_gradients_last_state(self):
        _numeric_check(return_sequences=False)

    def test_gradients_sequences(self):
        _numeric_check(return_sequences=True)

    def test_backward_before_forward_raises(self):
        layer = LSTM(3)
        build(layer, (4, 2))
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 3)))

    def test_backward_shape_mismatch_raises(self):
        layer = LSTM(3)
        build(layer, (4, 2))
        layer.forward(np.zeros((2, 4, 2)))
        with pytest.raises(ValueError):
            layer.backward(np.zeros((2, 5)))
