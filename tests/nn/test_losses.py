"""Tests for repro.nn.losses."""

import numpy as np
import pytest

from repro.nn.losses import MeanSquaredError, SoftmaxCrossEntropy


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        loss, _ = SoftmaxCrossEntropy().value_and_grad(
            logits, np.array([0, 1])
        )
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_uniform_prediction_log_k(self):
        logits = np.zeros((1, 8))
        loss, _ = SoftmaxCrossEntropy().value_and_grad(
            logits, np.array([3])
        )
        assert loss == pytest.approx(np.log(8))

    def test_gradient_is_softmax_minus_onehot(self):
        logits = np.array([[1.0, 2.0, 0.5]])
        _, grad = SoftmaxCrossEntropy().value_and_grad(
            logits, np.array([1])
        )
        exp = np.exp(logits - logits.max())
        probs = exp / exp.sum()
        expected = probs.copy()
        expected[0, 1] -= 1.0
        assert np.allclose(grad, expected)

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((4, 6))
        targets = rng.integers(0, 6, size=4)
        loss_fn = SoftmaxCrossEntropy()
        _, grad = loss_fn.value_and_grad(logits, targets)
        eps = 1e-6
        for index in range(logits.size):
            flat = logits.reshape(-1)
            orig = flat[index]
            flat[index] = orig + eps
            up, _ = loss_fn.value_and_grad(logits, targets)
            flat[index] = orig - eps
            down, _ = loss_fn.value_and_grad(logits, targets)
            flat[index] = orig
            assert grad.reshape(-1)[index] == pytest.approx(
                (up - down) / (2 * eps), abs=1e-6
            )

    def test_shape_validation(self):
        loss_fn = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            loss_fn.value_and_grad(np.zeros((2, 3, 4)), np.zeros(2))
        with pytest.raises(ValueError):
            loss_fn.value_and_grad(np.zeros((2, 3)), np.zeros(3))

    def test_log_likelihoods_selects_targets(self):
        logits = np.log(np.array([[0.7, 0.2, 0.1], [0.1, 0.1, 0.8]]))
        ll = SoftmaxCrossEntropy.log_likelihoods(
            logits, np.array([0, 2])
        )
        assert ll[0] == pytest.approx(np.log(0.7))
        assert ll[1] == pytest.approx(np.log(0.8))

    def test_extreme_logits_finite(self):
        logits = np.array([[1e5, -1e5]])
        loss, grad = SoftmaxCrossEntropy().value_and_grad(
            logits, np.array([1])
        )
        assert np.isfinite(loss)
        assert np.all(np.isfinite(grad))


class TestMeanSquaredError:
    def test_zero_on_equal(self):
        x = np.ones((3, 4))
        loss, grad = MeanSquaredError().value_and_grad(x, x.copy())
        assert loss == 0.0
        assert not grad.any()

    def test_known_value(self):
        out = np.array([[1.0, 2.0]])
        target = np.array([[0.0, 0.0]])
        loss, _ = MeanSquaredError().value_and_grad(out, target)
        assert loss == pytest.approx((1 + 4) / 2)

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        out = rng.standard_normal((3, 5))
        target = rng.standard_normal((3, 5))
        loss_fn = MeanSquaredError()
        _, grad = loss_fn.value_and_grad(out, target)
        eps = 1e-6
        flat = out.reshape(-1)
        for index in range(flat.size):
            orig = flat[index]
            flat[index] = orig + eps
            up, _ = loss_fn.value_and_grad(out, target)
            flat[index] = orig - eps
            down, _ = loss_fn.value_and_grad(out, target)
            flat[index] = orig
            assert grad.reshape(-1)[index] == pytest.approx(
                (up - down) / (2 * eps), abs=1e-6
            )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MeanSquaredError().value_and_grad(
                np.zeros((2, 3)), np.zeros((3, 2))
            )
