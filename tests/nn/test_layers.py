"""Tests for repro.nn.layers."""

import numpy as np
import pytest

from repro.nn.layers import Dense, Dropout, Embedding, TupleEmbedding


def build(layer, shape, seed=0):
    out_shape = layer.build(shape, np.random.default_rng(seed))
    return out_shape


class TestDense:
    def test_output_shape_2d(self):
        layer = Dense(7)
        assert build(layer, (4,)) == (7,)
        out = layer.forward(np.ones((3, 4)))
        assert out.shape == (3, 7)

    def test_output_shape_3d(self):
        layer = Dense(5)
        assert build(layer, (9, 4)) == (9, 5)
        out = layer.forward(np.ones((2, 9, 4)))
        assert out.shape == (2, 9, 5)

    def test_linear_forward_exact(self):
        layer = Dense(2)
        build(layer, (3,))
        layer.params["W"][...] = np.arange(6).reshape(3, 2)
        layer.params["b"][...] = [1.0, -1.0]
        out = layer.forward(np.array([[1.0, 0.0, 1.0]]))
        # x @ W = [0+4, 1+5]; plus b = [5, 5]
        assert np.allclose(out, [[5.0, 5.0]])

    def test_backward_before_forward_raises(self):
        layer = Dense(2)
        build(layer, (3,))
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_gradient_numerically(self):
        rng = np.random.default_rng(0)
        layer = Dense(4, activation="tanh")
        build(layer, (3,))
        x = rng.standard_normal((5, 3))
        grad_out = rng.standard_normal((5, 4))

        layer.zero_grads()
        out = layer.forward(x)
        grad_in = layer.backward(grad_out)

        eps = 1e-6
        for key in ("W", "b"):
            param = layer.params[key]
            flat = param.reshape(-1)
            for index in range(flat.size):
                orig = flat[index]
                flat[index] = orig + eps
                up = float(np.sum(layer.forward(x) * grad_out))
                flat[index] = orig - eps
                down = float(np.sum(layer.forward(x) * grad_out))
                flat[index] = orig
                numeric = (up - down) / (2 * eps)
                assert layer.grads[key].reshape(-1)[index] == (
                    pytest.approx(numeric, abs=1e-5)
                )
        # input gradient
        for index in range(x.size):
            orig = x.reshape(-1)[index]
            x.reshape(-1)[index] = orig + eps
            up = float(np.sum(layer.forward(x) * grad_out))
            x.reshape(-1)[index] = orig - eps
            down = float(np.sum(layer.forward(x) * grad_out))
            x.reshape(-1)[index] = orig
            assert grad_in.reshape(-1)[index] == pytest.approx(
                (up - down) / (2 * eps), abs=1e-5
            )

    def test_invalid_units(self):
        with pytest.raises(ValueError):
            Dense(0)


class TestEmbedding:
    def test_lookup(self):
        layer = Embedding(10, 4)
        build(layer, (3,))
        ids = np.array([[1, 2, 1]])
        out = layer.forward(ids)
        assert out.shape == (1, 3, 4)
        assert np.array_equal(out[0, 0], out[0, 2])

    def test_out_of_range_rejected(self):
        layer = Embedding(5, 2)
        build(layer, (2,))
        with pytest.raises(ValueError):
            layer.forward(np.array([[0, 5]]))

    def test_gradient_accumulates_per_row(self):
        layer = Embedding(6, 3)
        build(layer, (2,))
        layer.zero_grads()
        ids = np.array([[2, 2]])
        layer.forward(ids)
        layer.backward(np.ones((1, 2, 3)))
        # row 2 referenced twice -> gradient 2, others 0
        assert np.allclose(layer.grads["E"][2], 2.0)
        assert np.allclose(layer.grads["E"][0], 0.0)


class TestTupleEmbedding:
    def test_output_concatenates(self):
        layer = TupleEmbedding(8, 4, id_dim=5, gap_dim=3)
        assert build(layer, (6, 2)) == (6, 8)
        out = layer.forward(np.zeros((2, 6, 2), dtype=np.int64))
        assert out.shape == (2, 6, 8)

    def test_rejects_wrong_trailing_dim(self):
        layer = TupleEmbedding(8, 4)
        with pytest.raises(ValueError):
            build(layer, (6, 3))

    def test_grad_buffers_shared_with_children(self):
        layer = TupleEmbedding(8, 4, id_dim=5, gap_dim=3)
        build(layer, (6, 2))
        layer.zero_grads()
        x = np.zeros((1, 6, 2), dtype=np.int64)
        x[..., 0] = 3
        layer.forward(x)
        layer.backward(np.ones((1, 6, 8)))
        assert layer.grads["ids.E"][3].sum() != 0.0
        assert layer.grads["ids.E"] is layer.id_embedding.grads["E"]

    def test_params_shared_with_children(self):
        layer = TupleEmbedding(8, 4)
        build(layer, (6, 2))
        layer.params["ids.E"][0, 0] = 123.0
        assert layer.id_embedding.params["E"][0, 0] == 123.0


class TestDropout:
    def test_identity_at_inference(self):
        layer = Dropout(0.5)
        build(layer, (4,))
        x = np.ones((3, 4))
        assert np.array_equal(layer.forward(x, training=False), x)

    def test_scaling_preserves_expectation(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        build(layer, (1000,))
        x = np.ones((20, 1000))
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        build(layer, (50,))
        x = np.ones((4, 50))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(out))
        assert np.array_equal(grad == 0, out == 0)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)
