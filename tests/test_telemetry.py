"""Tests for the telemetry subsystem and its layer instrumentation.

Covers the metric primitives (counter monotonicity, Prometheus ``le``
bucket semantics), the timing helpers, registry injection via ``use``,
both exporters (including the Prometheus round-trip), and — lightly —
that each instrumented layer actually publishes under an injected
registry.
"""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.core.adaptation import distribution_shift
from repro.core.stream import StreamScorer
from repro.logs.message import SyslogMessage
from repro.logs.templates import TemplateStore
from repro.telemetry import (
    Histogram,
    MetricsRegistry,
    NullRegistry,
    from_prometheus,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_increments(self, registry):
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self, registry):
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_same_name_same_object(self, registry):
        assert registry.counter("c") is registry.counter("c")

    def test_cross_kind_collision_raises(self, registry):
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")


class TestGauge:
    def test_set_and_add(self, registry):
        gauge = registry.gauge("g")
        gauge.set(2.5)
        gauge.add(0.5)
        assert gauge.value == 3.0


class TestHistogram:
    def test_le_bucket_semantics(self):
        # Prometheus `le`: an observation equal to an edge falls into
        # that edge's bucket; beyond the last edge goes to +Inf.
        histogram = Histogram("h", edges=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 2.0, 3.0):
            histogram.observe(value)
        assert histogram.counts == [2, 2, 1]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(8.0)

    def test_observe_array_matches_scalar_path(self):
        values = np.array([0.1, 1.0, 1.1, 2.0, 9.9])
        one_by_one = Histogram("a", edges=(1.0, 2.0))
        for value in values:
            one_by_one.observe(value)
        vectorized = Histogram("b", edges=(1.0, 2.0))
        vectorized.observe_array(values)
        assert vectorized.counts == one_by_one.counts
        assert vectorized.sum == pytest.approx(one_by_one.sum)
        assert vectorized.count == one_by_one.count

    def test_rejects_unsorted_edges(self):
        with pytest.raises(ValueError):
            Histogram("h", edges=(2.0, 1.0))


class TestTimed:
    def test_context_manager_records(self, registry):
        with registry.timed("t"):
            pass
        histogram = registry.histogram("t")
        assert histogram.count == 1
        assert histogram.sum >= 0.0

    def test_decorator_resolves_registry_lazily(self):
        # Decorate at import time, swap the registry afterwards: the
        # duration must land in the registry active at call time.
        @telemetry.timed("lazy")
        def work():
            return 42

        swapped = MetricsRegistry()
        with telemetry.use(swapped):
            assert work() == 42
        assert swapped.histogram("lazy").count == 1

    def test_decorator_records_on_exception(self, registry):
        @registry.timed("boom")
        def explode():
            raise RuntimeError("no")

        with pytest.raises(RuntimeError):
            explode()
        assert registry.histogram("boom").count == 1


class TestDefaultRegistry:
    def test_use_swaps_and_restores(self, registry):
        before = telemetry.default_registry()
        with telemetry.use(registry) as active:
            assert active is registry
            assert telemetry.default_registry() is registry
            telemetry.counter("inside").inc()
        assert telemetry.default_registry() is before
        assert registry.counter("inside").value == 1

    def test_use_restores_on_exception(self, registry):
        before = telemetry.default_registry()
        with pytest.raises(RuntimeError):
            with telemetry.use(registry):
                raise RuntimeError("no")
        assert telemetry.default_registry() is before


class TestNullRegistry:
    def test_discards_everything(self):
        null = NullRegistry()
        null.counter("c").inc(5)
        null.gauge("g").set(1.0)
        null.histogram("h").observe(3.0)
        with null.timed("t"):
            pass
        assert null.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestExporters:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("stream.ticks").inc(3)
        registry.gauge("match.memo_hit_rate").set(0.75)
        histogram = registry.histogram("scores", edges=(1.0, 2.0))
        for value in (0.5, 1.5, 99.0):
            histogram.observe(value)
        return registry

    def test_snapshot_is_json_ready(self):
        snapshot = self._populated().snapshot()
        parsed = json.loads(json.dumps(snapshot))
        assert parsed["counters"]["stream.ticks"] == 3
        assert parsed["gauges"]["match.memo_hit_rate"] == 0.75
        assert parsed["histograms"]["scores"]["counts"] == [1, 1, 1]

    def test_to_json_round_trips(self):
        registry = self._populated()
        assert json.loads(registry.to_json()) == registry.snapshot()

    def test_prometheus_contains_typed_samples(self):
        text = self._populated().to_prometheus()
        assert "# TYPE repro_stream_ticks counter" in text
        assert "repro_stream_ticks 3" in text
        assert "# TYPE repro_match_memo_hit_rate gauge" in text
        assert '_bucket{le="+Inf"} 3' in text
        assert "repro_scores_count 3" in text

    def test_prometheus_buckets_are_cumulative(self):
        text = self._populated().to_prometheus()
        assert 'repro_scores_bucket{le="1"} 1' in text
        assert 'repro_scores_bucket{le="2"} 2' in text

    def test_prometheus_round_trip_is_exact(self):
        registry = self._populated()
        rebuilt = from_prometheus(registry.to_prometheus())
        assert rebuilt.snapshot() == registry.snapshot()
        assert rebuilt.to_prometheus() == registry.to_prometheus()

    def test_round_trip_preserves_float_values(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(0.6191854667555345)
        histogram = registry.histogram("h", edges=(0.25,))
        histogram.observe(0.1)
        histogram.observe(7.125)
        rebuilt = from_prometheus(registry.to_prometheus())
        assert rebuilt.snapshot() == registry.snapshot()


def _fleet(n: int, start: float = 0.0):
    return [
        SyslogMessage(
            timestamp=start + i * 60.0,
            host=f"vpe{i % 2}",
            process="rpd",
            text=f"adjacency {'up' if i % 3 else 'down'} on peer",
        )
        for i in range(n)
    ]


class TestLayerInstrumentation:
    """Each instrumented layer publishes into an injected registry."""

    def test_mining_and_matching_publish(self, registry):
        messages = _fleet(60)
        with telemetry.use(registry):
            store = TemplateStore().fit(messages)
            store.match_ids(messages)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["mine.messages_inserted"] == 60
        assert snapshot["counters"]["mine.templates_created"] >= 1
        assert snapshot["gauges"]["mine.vocabulary_size"] == (
            store.vocabulary_size
        )
        hits = snapshot["counters"]["match.memo_hits"]
        misses = snapshot["counters"]["match.memo_misses"]
        assert hits + misses == 60
        assert snapshot["gauges"]["match.memo_hit_rate"] == (
            pytest.approx(hits / 60)
        )

    def test_training_publishes_epochs(self, registry):
        from repro.core.detector import LSTMAnomalyDetector

        messages = _fleet(120)
        store = TemplateStore().fit(messages)
        with telemetry.use(registry):
            LSTMAnomalyDetector(
                store,
                vocabulary_capacity=16,
                window=4,
                hidden=(6, 6),
                epochs=2,
                oversample_rounds=0,
                seed=0,
            ).fit(messages)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["train.epochs"] >= 2
        assert snapshot["gauges"]["train.epoch_loss"] > 0
        assert snapshot["histograms"]["train.epoch_seconds"]["count"] >= 2

    def test_streaming_publishes_per_tick(self, registry):
        from repro.core.detector import LSTMAnomalyDetector

        messages = _fleet(120)
        store = TemplateStore().fit(messages)
        detector = LSTMAnomalyDetector(
            store,
            vocabulary_capacity=16,
            window=4,
            hidden=(6, 6),
            epochs=1,
            oversample_rounds=0,
            seed=0,
        ).fit(messages)
        with telemetry.use(registry):
            scorer = StreamScorer(detector)
            scorer.observe_batch(messages[:50])
            scorer.observe_batch(messages[50:])
        snapshot = registry.snapshot()
        assert snapshot["counters"]["stream.ticks"] == 2
        assert snapshot["counters"]["stream.messages_ingested"] == 120
        assert snapshot["counters"]["stream.messages_scored"] == (
            scorer.n_scored
        )
        assert snapshot["counters"]["stream.n_reordered"] == 0
        assert snapshot["histograms"]["stream.scores"]["count"] > 0

    def test_drift_check_publishes_similarity(self, registry):
        messages = _fleet(80)
        store = TemplateStore().fit(messages)
        annotated = store.transform(messages)
        with telemetry.use(registry):
            similarity = distribution_shift(
                annotated[:40], annotated[40:], store.vocabulary_size
            )
        snapshot = registry.snapshot()
        assert snapshot["counters"]["adapt.drift_checks"] == 1
        assert snapshot["gauges"]["adapt.cosine_similarity"] == (
            pytest.approx(similarity)
        )


class TestMerge:
    def _shard_snapshot(self, ticks, backlog, observations):
        shard = MetricsRegistry()
        shard.counter("runtime.ticks").inc(ticks)
        shard.gauge("runtime.backlog").set(backlog)
        histogram = shard.histogram(
            "stream.scores", edges=(1.0, 2.0)
        )
        for value in observations:
            histogram.observe(value)
        return shard.snapshot()

    def test_counters_sum(self, registry):
        registry.merge(
            [
                self._shard_snapshot(3, 1.0, []),
                self._shard_snapshot(4, 2.0, []),
            ]
        )
        assert registry.snapshot()["counters"]["runtime.ticks"] == 7

    def test_gauges_last_write_wins(self, registry):
        registry.merge(
            [
                self._shard_snapshot(0, 5.0, []),
                self._shard_snapshot(0, 9.0, []),
            ]
        )
        assert (
            registry.snapshot()["gauges"]["runtime.backlog"] == 9.0
        )

    def test_histograms_merge_bucket_wise(self, registry):
        registry.merge(
            [
                self._shard_snapshot(0, 0.0, [0.5, 1.5]),
                self._shard_snapshot(0, 0.0, [1.5, 3.0]),
            ]
        )
        merged = registry.snapshot()["histograms"]["stream.scores"]
        assert merged["counts"] == [1, 2, 1]
        assert merged["count"] == 4
        assert merged["sum"] == pytest.approx(6.5)

    def test_merge_into_populated_registry_accumulates(self, registry):
        registry.counter("runtime.ticks").inc(10)
        registry.merge([self._shard_snapshot(5, 0.0, [])])
        assert registry.snapshot()["counters"]["runtime.ticks"] == 15

    def test_mismatched_histogram_edges_refused(self, registry):
        other = MetricsRegistry()
        other.histogram("stream.scores", edges=(10.0,)).observe(1.0)
        with pytest.raises(ValueError, match="bucket edges differ"):
            registry.merge(
                [
                    self._shard_snapshot(0, 0.0, [0.5]),
                    other.snapshot(),
                ]
            )

    def test_merge_returns_self_for_chaining(self, registry):
        result = registry.merge([]).merge(
            [self._shard_snapshot(1, 0.0, [])]
        )
        assert result is registry
        assert registry.snapshot()["counters"]["runtime.ticks"] == 1

    def test_merged_snapshot_roundtrips_through_json(self, registry):
        registry.merge(
            [self._shard_snapshot(2, 1.0, [0.5, 1.5, 9.0])]
        )
        encoded = json.loads(json.dumps(registry.snapshot()))
        fresh = MetricsRegistry().merge([encoded])
        assert fresh.snapshot() == registry.snapshot()
