"""Tests for RCA-as-classification scoring.

The matching semantics (label-centric, fragments vs spurious), the
oracle anomaly proxy, and a small end-to-end run over a labeled
correlated-outage trace.
"""

import pytest

from repro.core.incident import CauseHypothesis, Incident
from repro.evaluation.rca import (
    KindScore,
    _symptom_keys,
    anomaly_events,
    attribute_dataset,
    evaluate_rca,
    score_rca,
)
from repro.logs.message import Severity
from repro.rca import IncidentReport
from repro.synthesis.correlated import GroundTruthIncident
from repro.synthesis.fleet import FleetSimulator
from repro.synthesis.outage import correlated_outage_config


def report(incident_id, devices, start, end, kind, element):
    incident = Incident()
    for offset, device in enumerate(devices):
        incident.record(device, start + offset, 5.0)
    incident.record(devices[-1], end, 5.0)
    incident.cause = CauseHypothesis(
        kind=kind, element=element, confidence=1.0
    )
    return IncidentReport(
        incident_id=incident_id,
        incident=incident,
        closed_at=end + 1.0,
    )


def truth(incident_id, devices, onset, clears_at, kind, element):
    return GroundTruthIncident(
        incident_id=incident_id,
        cause_kind=kind,
        cause_element=element,
        onset=onset,
        clears_at=clears_at,
        devices=tuple(devices),
    )


class TestKindScore:
    def test_rates(self):
        score = KindScore(kind="circuit", tp=3, fp=1, fn=1)
        assert score.precision == 0.75
        assert score.recall == 0.75
        assert score.f1 == 0.75

    def test_empty_denominators_floor_at_zero(self):
        score = KindScore(kind="circuit", tp=0, fp=0, fn=0)
        assert score.precision == 0.0
        assert score.recall == 0.0
        assert score.f1 == 0.0


class TestScoreRca:
    def test_perfect_match(self):
        predicted = [
            report(1, ["a", "b"], 0.0, 50.0, "circuit", "circ-0"),
        ]
        labels = [
            truth(1, ["a", "b"], 0.0, 60.0, "circuit", "circ-0"),
        ]
        result = score_rca(predicted, labels, pad=10.0)
        assert result.macro_f1 == 1.0
        assert result.n_matched == 1
        assert result.n_spurious == 0
        assert result.element_accuracy == 1.0
        assert result.mean_detection_seconds == 0.0

    def test_wrong_kind_counts_both_ways(self):
        """A miskinded attribution is a FP for the predicted kind and
        a FN for the true one."""
        predicted = [
            report(1, ["a", "b"], 0.0, 50.0, "software", "sw-1"),
        ]
        labels = [
            truth(1, ["a", "b"], 0.0, 60.0, "circuit", "circ-0"),
        ]
        result = score_rca(predicted, labels, pad=10.0)
        assert result.per_kind["software"].fp == 1
        assert result.per_kind["circuit"].fn == 1
        # circuit is the only kind in truth; its F1 is 0.
        assert result.macro_f1 == 0.0

    def test_best_overlap_claims_the_label(self):
        predicted = [
            report(1, ["a"], 0.0, 10.0, "device", "a"),
            report(2, ["a", "b", "c"], 5.0, 50.0, "site", "site-0"),
        ]
        labels = [
            truth(1, ["a", "b", "c"], 0.0, 60.0, "site", "site-0"),
        ]
        result = score_rca(predicted, labels, pad=10.0)
        assert result.per_kind["site"].tp == 1
        # The singleton also overlaps the label: a fragment, not a
        # spurious detection — it must not hurt precision.
        assert result.n_fragments == 1
        assert result.n_spurious == 0
        assert result.macro_f1 == 1.0

    def test_spurious_incident_hits_its_kinds_precision(self):
        predicted = [
            report(1, ["a", "b"], 0.0, 50.0, "circuit", "circ-0"),
            report(2, ["z"], 9000.0, 9010.0, "device", "z"),
        ]
        labels = [
            truth(1, ["a", "b"], 0.0, 60.0, "circuit", "circ-0"),
        ]
        result = score_rca(predicted, labels, pad=10.0)
        assert result.n_spurious == 1
        assert result.per_kind["device"].fp == 1
        # Macro-F1 averages over truth kinds only, so the spurious
        # device incident does not drag the headline number.
        assert result.macro_f1 == 1.0

    def test_missed_label_is_a_false_negative(self):
        labels = [
            truth(1, ["a", "b"], 0.0, 60.0, "circuit", "circ-0"),
        ]
        result = score_rca([], labels, pad=10.0)
        assert result.n_matched == 0
        assert result.per_kind["circuit"].fn == 1
        assert result.macro_f1 == 0.0

    def test_time_disjoint_overlap_rejected(self):
        """Shared devices alone are not a match: the spans must
        overlap within the pad."""
        predicted = [
            report(1, ["a", "b"], 5000.0, 5050.0, "circuit", "c0"),
        ]
        labels = [
            truth(1, ["a", "b"], 0.0, 60.0, "circuit", "c0"),
        ]
        result = score_rca(predicted, labels, pad=10.0)
        assert result.n_matched == 0
        assert result.n_spurious == 1

    def test_element_accuracy_over_correct_kinds(self):
        predicted = [
            report(1, ["a", "b"], 0.0, 50.0, "circuit", "circ-0"),
            report(2, ["c", "d"], 200.0, 250.0, "circuit", "circ-9"),
        ]
        labels = [
            truth(1, ["a", "b"], 0.0, 60.0, "circuit", "circ-0"),
            truth(2, ["c", "d"], 200.0, 260.0, "circuit", "circ-1"),
        ]
        result = score_rca(predicted, labels, pad=10.0)
        assert result.per_kind["circuit"].tp == 2
        assert result.element_accuracy == 0.5


class TestAnomalyProxy:
    def test_symptom_keys_exclude_maintenance_notices(self):
        """The NOTICE-level maintenance templates describe planned
        work; only WARNING-or-worse symptoms count as anomalies (this
        is also what keeps routine config commits out)."""
        keys = _symptom_keys()
        assert keys
        for _process, severity, _prefix in keys:
            assert severity <= int(Severity.WARNING)
        assert ("mgd", int(Severity.NOTICE), "UI_COMMIT") not in keys


@pytest.fixture(scope="module")
def labeled_dataset():
    return FleetSimulator(
        correlated_outage_config(n_months=1, seed=11, n_outages=5)
    ).run()


class TestEndToEnd:
    def test_dataset_carries_labels(self, labeled_dataset):
        assert labeled_dataset.topology is not None
        assert len(labeled_dataset.incidents) == 5

    def test_anomaly_events_cover_labeled_devices(
        self, labeled_dataset
    ):
        events = anomaly_events(labeled_dataset)
        assert events == sorted(events)
        anomalous_devices = {device for _, device, _ in events}
        for incident in labeled_dataset.incidents:
            assert set(incident.devices) <= anomalous_devices
        for _, _, score in events:
            assert score > 0

    def test_attribution_quality(self, labeled_dataset):
        evaluation = evaluate_rca(labeled_dataset)
        assert evaluation.n_truth == 5
        assert evaluation.n_matched >= 4
        assert evaluation.macro_f1 >= 0.6
        assert evaluation.mean_detection_seconds >= 0.0

    def test_attribute_dataset_is_deterministic(self, labeled_dataset):
        from repro.rca import incident_row

        first = attribute_dataset(labeled_dataset)
        second = attribute_dataset(labeled_dataset)
        assert [incident_row(r) for r in first] == [
            incident_row(r) for r in second
        ]
