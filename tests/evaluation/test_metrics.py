"""Tests for repro.evaluation.metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.evaluation.metrics import (
    DetectionCounts,
    PrecisionRecallPoint,
    auc_pr,
    best_operating_point,
    f_measure,
)


class TestDetectionCounts:
    def test_precision(self):
        counts = DetectionCounts(8, 2, 5, 10)
        assert counts.precision == pytest.approx(0.8)

    def test_recall(self):
        counts = DetectionCounts(8, 2, 5, 10)
        assert counts.recall == pytest.approx(0.5)

    def test_no_detections_zero_precision(self):
        assert DetectionCounts(0, 0, 0, 10).precision == 0.0

    def test_no_tickets_zero_recall(self):
        assert DetectionCounts(5, 0, 0, 0).recall == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DetectionCounts(-1, 0, 0, 0)

    def test_detected_beyond_total_rejected(self):
        with pytest.raises(ValueError):
            DetectionCounts(0, 0, 5, 4)

    def test_f_measure_consistent(self):
        counts = DetectionCounts(8, 2, 8, 10)
        assert counts.f_measure == pytest.approx(
            f_measure(0.8, 0.8)
        )


class TestFMeasure:
    def test_harmonic_mean(self):
        assert f_measure(0.5, 1.0) == pytest.approx(2 / 3)

    def test_zero_when_both_zero(self):
        assert f_measure(0.0, 0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            f_measure(-0.1, 0.5)

    @given(
        st.floats(min_value=0, max_value=1),
        st.floats(min_value=0, max_value=1),
    )
    def test_bounded_by_min_and_max(self, p, r):
        f = f_measure(p, r)
        assert f <= max(p, r) + 1e-12
        assert f >= 0


class TestOperatingPoint:
    def test_max_f(self):
        curve = [
            PrecisionRecallPoint(0.1, 0.5, 1.0),
            PrecisionRecallPoint(0.2, 0.9, 0.9),
            PrecisionRecallPoint(0.3, 1.0, 0.1),
        ]
        assert best_operating_point(curve).threshold == 0.2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            best_operating_point([])


class TestAucPr:
    def test_perfect_curve(self):
        curve = [
            PrecisionRecallPoint(0.0, 1.0, 0.0),
            PrecisionRecallPoint(1.0, 1.0, 1.0),
        ]
        assert auc_pr(curve) == pytest.approx(1.0)

    def test_half_precision(self):
        curve = [
            PrecisionRecallPoint(0.0, 0.5, 0.0),
            PrecisionRecallPoint(1.0, 0.5, 1.0),
        ]
        assert auc_pr(curve) == pytest.approx(0.5)

    def test_duplicate_recalls_keep_max_precision(self):
        curve = [
            PrecisionRecallPoint(0.0, 0.2, 1.0),
            PrecisionRecallPoint(0.1, 0.9, 1.0),
            PrecisionRecallPoint(0.2, 0.8, 0.0),
        ]
        value = auc_pr(curve)
        assert value == pytest.approx((0.8 + 0.9) / 2)

    def test_empty(self):
        assert auc_pr([]) == 0.0

    def test_single_point(self):
        assert auc_pr(
            [PrecisionRecallPoint(0.0, 0.8, 0.5)]
        ) == pytest.approx(0.4)
