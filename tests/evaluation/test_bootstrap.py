"""Tests for repro.evaluation.bootstrap."""

import numpy as np
import pytest

from repro.core.mapping import map_anomalies
from repro.evaluation.bootstrap import (
    ConfidenceInterval,
    bootstrap_detection_metrics,
)
from repro.tickets.ticket import RootCause, TroubleTicket
from repro.timeutil import DAY, HOUR

BASE = 300 * DAY


def make_mapping(n_tickets=20, detected=15, extra_false_alarms=5):
    """A mapping with known precision/recall structure."""
    tickets = [
        TroubleTicket(
            vpe="vpe00",
            root_cause=RootCause.CIRCUIT,
            report_time=BASE + i * 5 * DAY,
            repair_time=BASE + i * 5 * DAY + HOUR,
        )
        for i in range(n_tickets)
    ]
    anomaly_times = [
        tickets[i].report_time - HOUR for i in range(detected)
    ]
    anomaly_times += [
        BASE - (i + 2) * 10 * DAY for i in range(extra_false_alarms)
    ]
    return map_anomalies(
        {"vpe00": np.asarray(sorted(anomaly_times))}, tickets
    )


class TestConfidenceInterval:
    def test_str(self):
        ci = ConfidenceInterval(0.5, 0.4, 0.6)
        assert str(ci) == "0.500 [0.400, 0.600]"

    def test_bracket_enforced(self):
        with pytest.raises(ValueError):
            ConfidenceInterval(0.9, 0.4, 0.6)


class TestBootstrap:
    def test_intervals_bracket_points(self):
        mapping = make_mapping()
        out = bootstrap_detection_metrics(mapping, n_boot=300)
        counts = mapping.counts
        assert out["precision"].low <= counts.precision <= (
            out["precision"].high
        )
        assert out["recall"].low <= counts.recall <= (
            out["recall"].high
        )
        assert out["f_measure"].low <= counts.f_measure <= (
            out["f_measure"].high
        )

    def test_interval_width_shrinks_with_sample_size(self):
        small = bootstrap_detection_metrics(
            make_mapping(n_tickets=10, detected=7,
                         extra_false_alarms=3),
            n_boot=400,
        )["recall"]
        large = bootstrap_detection_metrics(
            make_mapping(n_tickets=160, detected=112,
                         extra_false_alarms=48),
            n_boot=400,
        )["recall"]
        assert (large.high - large.low) < (small.high - small.low)

    def test_perfect_detection_degenerate_interval(self):
        mapping = make_mapping(
            n_tickets=10, detected=10, extra_false_alarms=0
        )
        out = bootstrap_detection_metrics(mapping, n_boot=100)
        assert out["precision"].low == 1.0
        assert out["recall"].high == 1.0

    def test_empty_mapping(self):
        mapping = map_anomalies({}, [])
        out = bootstrap_detection_metrics(mapping, n_boot=10)
        assert out["f_measure"].point == 0.0

    def test_deterministic_with_rng(self):
        mapping = make_mapping()
        a = bootstrap_detection_metrics(
            mapping, n_boot=100, rng=np.random.default_rng(7)
        )
        b = bootstrap_detection_metrics(
            mapping, n_boot=100, rng=np.random.default_rng(7)
        )
        assert str(a["f_measure"]) == str(b["f_measure"])

    def test_invalid_n_boot(self):
        with pytest.raises(ValueError):
            bootstrap_detection_metrics(make_mapping(), n_boot=0)
