"""Tests for repro.evaluation.reporting."""

import pytest

from repro.evaluation.reporting import format_series, format_table


class TestFormatTable:
    def test_alignment(self):
        table = format_table(
            ["name", "value"],
            [["alpha", 1.0], ["b", 22.5]],
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].index("value") == lines[2].index("1.000")

    def test_title(self):
        table = format_table(["a"], [[1]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        table = format_table(["x"], [[0.123456]])
        assert "0.123" in table

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert len(table.splitlines()) == 2


class TestFormatSeries:
    def test_basic(self):
        line = format_series("f", [0.5, 0.25])
        assert line == "f: [0.500, 0.250]"

    def test_precision(self):
        assert format_series("x", [0.123456], precision=1) == "x: [0.1]"
