"""Unit tests for the streaming RCA engine.

The clustering/attribution edge cases the subsystem must get right:
singleton incidents, simultaneous independent outages that must not
merge, a device joining an incident across a checkpoint restore, and
the empty-topology per-device fallback — plus the durability and
telemetry contracts the service relies on.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.logs.message import Severity, SyslogMessage
from repro.rca import (
    DEFAULT_CLUSTER_GAP,
    INCIDENT_CSV_COLUMNS,
    RCA_STATE_VERSION,
    RcaEngine,
    incident_row,
)
from repro.topology import (
    KIND_CIRCUIT,
    KIND_DEVICE,
    FleetTopology,
)


@pytest.fixture()
def topology():
    """Two fully disjoint subtrees plus one cross-cohort device.

    ``a1``/``a2`` share circuit/site/cable/software; so do ``b1``/
    ``b2`` on the other side.  ``m`` rides the b-side circuit but
    runs the a-side software image, bridging the subtrees.
    """
    return FleetTopology(
        device_circuit={
            "a1": "circ-a", "a2": "circ-a",
            "b1": "circ-b", "b2": "circ-b", "m": "circ-b",
        },
        circuit_site={"circ-a": "site-a", "circ-b": "site-b"},
        site_cable={"site-a": "cable-a", "site-b": "cable-b"},
        device_software={
            "a1": "sw-a", "a2": "sw-a",
            "b1": "sw-b", "b2": "sw-b", "m": "sw-a",
        },
    )


def close_all(engine):
    reports = engine.flush()
    assert not engine.open_incidents
    return reports


class TestClustering:
    def test_singleton_incident_blames_the_device(self, topology):
        """One lone anomaly: the LCA chain bottoms out at the device
        itself (it covers exactly one device, confidence 1)."""
        engine = RcaEngine(topology=topology)
        engine.ingest("a1", 100.0, 5.0)
        (report,) = engine.advance(100.0 + DEFAULT_CLUSTER_GAP + 1)
        cause = report.incident.cause
        assert report.incident.devices == ["a1"]
        assert cause.kind == KIND_DEVICE
        assert cause.element == "a1"
        assert cause.confidence == 1.0

    def test_shared_circuit_devices_merge(self, topology):
        engine = RcaEngine(topology=topology)
        engine.ingest("a1", 0.0, 5.0)
        engine.ingest("a2", 100.0, 6.0)
        (report,) = close_all(engine)
        cause = report.incident.cause
        assert report.incident.devices == ["a1", "a2"]
        assert cause.kind == KIND_CIRCUIT
        assert cause.element == "circ-a"
        assert cause.confidence == 1.0

    def test_independent_simultaneous_outages_do_not_merge(
        self, topology
    ):
        """Two outages in disjoint subtrees, interleaved in time,
        must close as two incidents with their own causes."""
        engine = RcaEngine(topology=topology)
        engine.ingest("a1", 0.0, 5.0)
        engine.ingest("b1", 5.0, 5.0)
        engine.ingest("a2", 10.0, 5.0)
        engine.ingest("b2", 15.0, 5.0)
        assert len(engine.open_incidents) == 2
        reports = close_all(engine)
        assert sorted(r.incident.devices for r in reports) == [
            ["a1", "a2"], ["b1", "b2"],
        ]
        causes = {r.incident.cause.element for r in reports}
        # The b-side blames its software cohort, not circ-b: ``m``
        # also rides circ-b, so sw-b is the tighter covering element.
        assert causes == {"circ-a", "sw-b"}

    def test_two_eligible_incidents_fold_oldest_first(self, topology):
        """``m`` shares elements with both open incidents; the scan
        is oldest-first, so it deterministically joins the first."""
        engine = RcaEngine(topology=topology)
        engine.ingest("a1", 0.0, 5.0)
        engine.ingest("b1", 10.0, 5.0)
        engine.ingest("m", 20.0, 5.0)
        first_id = engine.open_incidents[0]
        reports = {r.incident_id: r for r in close_all(engine)}
        assert reports[first_id].incident.devices == ["a1", "m"]

    def test_quiet_gap_splits_same_device(self, topology):
        engine = RcaEngine(topology=topology, cluster_gap=60.0)
        engine.ingest("a1", 0.0, 5.0)
        engine.ingest("a1", 1000.0, 5.0)
        assert len(engine.open_incidents) == 2

    def test_unknown_device_clusters_alone(self, topology):
        """A device the topology has never heard of gets no shared
        elements, so it never joins (or attracts) an incident."""
        engine = RcaEngine(topology=topology)
        engine.ingest("ghost", 0.0, 9.0)
        engine.ingest("a1", 1.0, 5.0)
        assert len(engine.open_incidents) == 2
        by_devices = {
            tuple(r.incident.devices): r.incident.cause
            for r in close_all(engine)
        }
        ghost = by_devices[("ghost",)]
        assert ghost.kind == KIND_DEVICE
        assert ghost.element == "ghost"

    def test_empty_topology_falls_back_to_per_device(self):
        """No topology at all: every device is its own incident and
        its own cause."""
        engine = RcaEngine(topology=None)
        engine.ingest("a1", 0.0, 5.0)
        engine.ingest("a2", 0.0, 7.0)
        assert len(engine.open_incidents) == 2
        for report in close_all(engine):
            cause = report.incident.cause
            (device,) = report.incident.devices
            assert cause.kind == KIND_DEVICE
            assert cause.element == device
            assert cause.confidence == 1.0

    def test_merged_without_common_element_blames_loudest(
        self, topology
    ):
        """A chain of pairwise overlaps can merge devices that share
        nothing fleet-wide; attribution degrades to the loudest
        device with diluted confidence."""
        engine = RcaEngine(topology=topology)
        engine.ingest("a1", 0.0, 5.0)
        engine.ingest("m", 10.0, 9.0)  # joins via sw-a
        engine.ingest("b1", 20.0, 5.0)  # joins via circ-b
        assert len(engine.open_incidents) == 1
        (report,) = close_all(engine)
        cause = report.incident.cause
        assert cause.kind == KIND_DEVICE
        assert cause.element == "m"
        assert cause.confidence == pytest.approx(1 / 3)


class TestAdvance:
    def test_closed_at_is_logical_not_observed(self, topology):
        """A watermark jump days past the last anomaly must stamp
        ``closed_at`` at last anomaly + gap, not at the jump."""
        engine = RcaEngine(topology=topology, cluster_gap=60.0)
        engine.ingest("a1", 100.0, 5.0)
        (report,) = engine.advance(1e6)
        assert report.closed_at == 160.0

    def test_watermark_is_monotonic(self, topology):
        engine = RcaEngine(topology=topology)
        engine.advance(50.0)
        engine.advance(10.0)
        assert engine.watermark == 50.0

    def test_close_stride_independent(self, topology):
        """Advancing in one jump or many small steps must close the
        same incidents with identical rows (the replay contract)."""
        rows = []
        for strides in ([5000.0], [1000.0, 2000.0, 3500.0, 5000.0]):
            engine = RcaEngine(topology=topology, cluster_gap=60.0)
            engine.ingest("a1", 0.0, 5.0)
            engine.ingest("a2", 30.0, 6.0)
            reports = []
            for mark in strides:
                reports.extend(engine.advance(mark))
            rows.append([incident_row(r) for r in reports])
        assert rows[0] == rows[1]

    def test_drain_closed_pops_once(self, topology):
        engine = RcaEngine(topology=topology)
        engine.ingest("a1", 0.0, 5.0)
        engine.advance(1e6)
        assert len(engine.drain_closed()) == 1
        assert engine.drain_closed() == []

    def test_cluster_gap_must_be_positive(self):
        with pytest.raises(ValueError):
            RcaEngine(cluster_gap=0.0)


class TestDurability:
    def test_device_joins_mid_incident_after_restart(self, topology):
        """The shard-restart drill: an incident opened before the
        checkpoint keeps accreting devices after a restore, and the
        restored run emits the same report an uninterrupted one
        would."""
        live = RcaEngine(topology=topology)
        live.ingest("a1", 0.0, 5.0)
        state = live.state_dict()

        restored = RcaEngine(topology=topology)
        restored.load_state_dict(state)
        restored.ingest("a2", 100.0, 6.0)
        assert len(restored.open_incidents) == 1
        (report,) = close_all(restored)
        assert report.incident.devices == ["a1", "a2"]
        assert report.incident.cause.element == "circ-a"

        live.ingest("a2", 100.0, 6.0)
        (baseline,) = close_all(live)
        assert incident_row(report) == incident_row(baseline)

    def test_state_round_trips(self, topology):
        engine = RcaEngine(topology=topology)
        engine.ingest("a1", 0.0, 5.0)
        engine.ingest("b1", 10.0, 7.0)
        engine.advance(20.0)
        state = engine.state_dict()
        restored = RcaEngine(topology=topology)
        restored.load_state_dict(state)
        assert restored.state_dict() == state
        assert restored.open_incidents == engine.open_incidents
        assert restored.watermark == engine.watermark

    def test_incident_ids_continue_after_restore(self, topology):
        engine = RcaEngine(topology=topology)
        engine.ingest("a1", 0.0, 5.0)
        restored = RcaEngine(topology=topology)
        restored.load_state_dict(engine.state_dict())
        restored.ingest("b1", 0.0, 5.0)
        assert restored.open_incidents == (1, 2)

    def test_version_mismatch_refused(self, topology):
        engine = RcaEngine(topology=topology)
        state = engine.state_dict()
        state["version"] = RCA_STATE_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            RcaEngine(topology=topology).load_state_dict(state)


class TestObserveTick:
    @staticmethod
    def tick(hosts_times):
        return [
            SyslogMessage(
                timestamp=time,
                host=host,
                process="rpd",
                text="RPD_TEST: boom",
                severity=Severity.ERROR,
            )
            for host, time in hosts_times
        ]

    def test_anomalies_ingested_and_watermark_advanced(self, topology):
        engine = RcaEngine(topology=topology, cluster_gap=60.0)
        messages = self.tick([("a1", 0.0), ("a2", 10.0), ("b1", 20.0)])
        scores = np.array([5.0, 0.1, 6.0])
        kept = np.array([True, True, True])
        engine.observe_tick(0, messages, scores, kept, 1.0)
        assert engine.watermark == 20.0
        reports = close_all(engine)
        # a2 scored below threshold; a1 and b1 share nothing, so the
        # tick opened exactly two singleton incidents.
        devices = {d for r in reports for d in r.incident.devices}
        assert devices == {"a1", "b1"}

    def test_nan_scores_never_qualify(self, topology):
        engine = RcaEngine(topology=topology)
        messages = self.tick([("a1", 0.0), ("a2", 10.0)])
        scores = np.array([np.nan, np.nan])
        kept = np.array([True, True])
        engine.observe_tick(0, messages, scores, kept, 1.0)
        assert not engine.open_incidents
        assert engine.watermark == 10.0

    def test_dropped_messages_never_qualify(self, topology):
        engine = RcaEngine(topology=topology)
        messages = self.tick([("a1", 0.0)])
        engine.observe_tick(
            0, messages, np.array([9.0]), np.array([False]), 1.0
        )
        assert not engine.open_incidents

    def test_quiet_tick_still_closes_stale_incidents(self, topology):
        """A tick with no anomalies still advances the watermark and
        closes incidents gone quiet; a fully empty tick is a no-op."""
        engine = RcaEngine(topology=topology, cluster_gap=60.0)
        engine.observe_tick(
            0,
            self.tick([("a1", 0.0)]),
            np.array([9.0]),
            np.array([True]),
            1.0,
        )
        closed = engine.observe_tick(
            1,
            self.tick([("b1", 1000.0)]),
            np.array([0.1]),
            np.array([True]),
            1.0,
        )
        assert len(closed) == 1
        assert engine.observe_tick(
            2, [], np.empty(0), np.empty(0, dtype=bool), 1.0
        ) == []


class TestReporting:
    def test_incident_row_shape_and_float_repr(self, topology):
        engine = RcaEngine(topology=topology)
        engine.ingest("a1", 0.125, 5.5)
        (report,) = close_all(engine)
        row = incident_row(report)
        fields = row.rstrip("\n").split(",")
        assert len(fields) == len(INCIDENT_CSV_COLUMNS)
        assert fields[1] == repr(0.125)
        assert float(fields[6]) == 5.5

    def test_telemetry_published_at_boundaries(self, topology):
        registry = telemetry.MetricsRegistry()
        with telemetry.use(registry):
            engine = RcaEngine(topology=topology, cluster_gap=60.0)
            engine.ingest("a1", 0.0, 5.0)
            engine.ingest("b1", 0.0, 5.0)
            engine.advance(10.0)
            assert registry.counter("rca.incidents_opened").value == 2
            assert registry.gauge("rca.incidents_open").value == 2
            engine.advance(1e6)
            assert registry.counter("rca.incidents_closed").value == 2
            assert registry.gauge("rca.incidents_open").value == 0
        snapshot = registry.snapshot()
        assert "rca.incident_devices" in snapshot["histograms"]
        assert "rca.attribution_seconds" in snapshot["histograms"]
