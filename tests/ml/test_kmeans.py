"""Tests for repro.ml.kmeans."""

import numpy as np
import pytest

from repro.ml.kmeans import KMeans, choose_k, partition_modularity


def blobs(k=3, per=20, spread=0.05, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-5, 5, size=(k, 4))
    points = np.concatenate([
        center + spread * rng.standard_normal((per, 4))
        for center in centers
    ])
    labels = np.repeat(np.arange(k), per)
    return points, labels


class TestKMeans:
    def test_recovers_well_separated_blobs(self):
        points, truth = blobs(k=3)
        labels = KMeans(3, rng=np.random.default_rng(1)).fit(
            points
        ).labels_
        # cluster labels are permutation-invariant: check purity
        for cluster in range(3):
            members = truth[labels == cluster]
            assert members.size > 0
            counts = np.bincount(members, minlength=3)
            assert counts.max() == members.size

    def test_k1_single_cluster(self):
        points, _ = blobs(k=2)
        model = KMeans(1).fit(points)
        assert set(model.labels_) == {0}
        assert np.allclose(model.centroids_[0], points.mean(axis=0))

    def test_predict_assigns_nearest(self):
        points, _ = blobs(k=2, seed=3)
        model = KMeans(2, rng=np.random.default_rng(0)).fit(points)
        predicted = model.predict(points)
        assert np.array_equal(predicted, model.labels_)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            KMeans(2).predict(np.zeros((3, 2)))

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            KMeans(5).fit(np.zeros((3, 2)))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KMeans(0)

    def test_deterministic_with_seed(self):
        points, _ = blobs(k=3, seed=4)
        a = KMeans(3, rng=np.random.default_rng(7)).fit(points)
        b = KMeans(3, rng=np.random.default_rng(7)).fit(points)
        assert np.array_equal(a.labels_, b.labels_)

    def test_inertia_decreases_with_k(self):
        points, _ = blobs(k=4, seed=5)
        inertias = [
            KMeans(k, rng=np.random.default_rng(0)).fit(points).inertia_
            for k in (1, 2, 4)
        ]
        assert inertias[0] > inertias[1] > inertias[2]

    def test_duplicate_points_handled(self):
        points = np.ones((10, 3))
        model = KMeans(2, rng=np.random.default_rng(0)).fit(points)
        assert model.inertia_ == pytest.approx(0.0)


class TestModularity:
    def test_perfect_partition_positive(self):
        sims = np.array([
            [1.0, 0.9, 0.0, 0.0],
            [0.9, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.9],
            [0.0, 0.0, 0.9, 1.0],
        ])
        good = partition_modularity(sims, np.array([0, 0, 1, 1]))
        bad = partition_modularity(sims, np.array([0, 1, 0, 1]))
        assert good > bad
        assert good > 0

    def test_empty_graph_zero(self):
        assert partition_modularity(
            np.zeros((3, 3)), np.array([0, 1, 2])
        ) == 0.0


class TestChooseK:
    def test_finds_true_cluster_count(self):
        # Blob directions are what cosine similarity sees; use
        # direction-separated blobs.
        rng = np.random.default_rng(0)
        centers = np.eye(4)[:3] * 10
        points = np.concatenate([
            center + 0.1 * rng.standard_normal((15, 4))
            for center in centers
        ])
        assert choose_k(points, candidates=(2, 3, 4, 5)) == 3

    def test_infeasible_candidates_raise(self):
        with pytest.raises(ValueError):
            choose_k(np.zeros((2, 2)), candidates=(5,))
