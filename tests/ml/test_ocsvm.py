"""Tests for repro.ml.ocsvm."""

import numpy as np
import pytest

from repro.ml.ocsvm import OneClassSVM, RandomFourierFeatures


def normal_cloud(n=300, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, 4)) * 0.5


class TestRandomFourierFeatures:
    def test_output_shape(self):
        rff = RandomFourierFeatures(4, n_components=32)
        assert rff.transform(np.zeros((5, 4))).shape == (5, 32)

    def test_approximates_rbf_kernel(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((30, 3))
        gamma = 0.7
        rff = RandomFourierFeatures(
            3, n_components=4096, gamma=gamma, rng=rng
        )
        phi = rff.transform(x)
        approx = phi @ phi.T
        sq = ((x[:, None, :] - x[None, :, :]) ** 2).sum(-1)
        exact = np.exp(-gamma * sq)
        assert np.max(np.abs(approx - exact)) < 0.15

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RandomFourierFeatures(3, n_components=0)
        with pytest.raises(ValueError):
            RandomFourierFeatures(3, gamma=0.0)


class TestOneClassSVM:
    def test_inliers_score_above_outliers(self):
        train = normal_cloud()
        svm = OneClassSVM(
            nu=0.1, gamma=0.5, rng=np.random.default_rng(1)
        ).fit(train)
        inlier_scores = svm.score_samples(normal_cloud(seed=2))
        outliers = np.full((50, 4), 6.0)
        outlier_scores = svm.score_samples(outliers)
        assert inlier_scores.mean() > outlier_scores.mean()

    def test_predict_labels_far_points_negative(self):
        svm = OneClassSVM(
            nu=0.05, gamma=0.5, rng=np.random.default_rng(1)
        ).fit(normal_cloud())
        far = np.full((10, 4), 8.0)
        assert np.all(svm.predict(far) == -1)

    def test_training_outlier_fraction_bounded(self):
        train = normal_cloud(n=500)
        nu = 0.1
        svm = OneClassSVM(
            nu=nu, gamma=0.5, rng=np.random.default_rng(3)
        ).fit(train)
        fraction = float((svm.predict(train) == -1).mean())
        # nu upper-bounds the expected training outlier fraction;
        # allow slack for the SGD approximation.
        assert fraction <= 3 * nu + 0.05

    def test_linear_kernel_path(self):
        train = normal_cloud()
        svm = OneClassSVM(
            kernel="linear", nu=0.1, rng=np.random.default_rng(0)
        ).fit(train)
        assert svm.score_samples(train).shape == (train.shape[0],)

    def test_score_before_fit(self):
        with pytest.raises(RuntimeError):
            OneClassSVM().score_samples(np.zeros((2, 3)))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            OneClassSVM(nu=0.0)
        with pytest.raises(ValueError):
            OneClassSVM(kernel="poly")

    def test_deterministic(self):
        train = normal_cloud()
        scores = []
        for _ in range(2):
            svm = OneClassSVM(rng=np.random.default_rng(9)).fit(train)
            scores.append(svm.score_samples(train[:10]))
        assert np.allclose(scores[0], scores[1])
