"""Tests for repro.ml.pca."""

import numpy as np
import pytest

from repro.ml.pca import PCADetector


_BASIS = np.random.default_rng(1234).standard_normal((2, 5))


def low_rank_data(n=200, seed=0):
    """Points living (noisily) on one fixed 2-D plane inside R^5."""
    rng = np.random.default_rng(seed)
    coords = rng.standard_normal((n, 2)) * 3.0
    return coords @ _BASIS + 0.01 * rng.standard_normal((n, 5))


class TestPCADetector:
    def test_on_plane_low_residual(self):
        data = low_rank_data()
        detector = PCADetector(variance_retained=0.95).fit(data)
        scores = detector.score_samples(low_rank_data(seed=1))
        assert np.median(scores) < 0.01

    def test_off_plane_high_residual(self):
        data = low_rank_data()
        detector = PCADetector().fit(data)
        on_plane = detector.score_samples(low_rank_data(seed=1))
        off_plane = detector.score_samples(
            low_rank_data(seed=1) + np.full(5, 4.0)
        )
        assert off_plane.mean() > 10 * on_plane.mean()

    def test_explicit_components(self):
        data = low_rank_data()
        detector = PCADetector(n_components=2).fit(data)
        assert detector.components_.shape == (2, 5)

    def test_variance_threshold_picks_plane_rank(self):
        data = low_rank_data()
        detector = PCADetector(variance_retained=0.99).fit(data)
        assert detector.components_.shape[0] == 2

    def test_full_variance_keeps_all(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((50, 4))
        detector = PCADetector(variance_retained=1.0).fit(data)
        scores = detector.score_samples(data)
        assert np.allclose(scores, 0.0, atol=1e-18)

    def test_predict_threshold(self):
        data = low_rank_data()
        detector = PCADetector().fit(data)
        labels = detector.predict(
            np.concatenate([data[:5], data[:5] + 5.0]), threshold=0.1
        )
        assert list(labels[:5]) == [1] * 5
        assert list(labels[5:]) == [-1] * 5

    def test_score_before_fit(self):
        with pytest.raises(RuntimeError):
            PCADetector().score_samples(np.zeros((2, 3)))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            PCADetector(variance_retained=0.0)
        with pytest.raises(ValueError):
            PCADetector().fit(np.zeros((1, 3)))
