"""Tests for repro.ml.isolation_forest."""

import numpy as np
import pytest

from repro.ml.isolation_forest import (
    IsolationForest,
    average_path_length,
)


def cluster(n=400, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, 3)) * 0.5


class TestAveragePathLength:
    def test_small_values(self):
        assert average_path_length(0) == 0.0
        assert average_path_length(1) == 0.0
        assert average_path_length(2) == 1.0

    def test_grows_logarithmically(self):
        assert average_path_length(256) > average_path_length(64)
        assert average_path_length(256) < 2 * np.log2(256)


class TestIsolationForest:
    def test_outliers_score_higher(self):
        forest = IsolationForest(
            n_trees=50, rng=np.random.default_rng(1)
        ).fit(cluster())
        inliers = forest.score_samples(cluster(seed=2)[:50])
        outliers = forest.score_samples(np.full((10, 3), 6.0))
        assert outliers.mean() > inliers.mean() + 0.1

    def test_scores_in_unit_interval(self):
        forest = IsolationForest(
            n_trees=25, rng=np.random.default_rng(1)
        ).fit(cluster())
        scores = forest.score_samples(cluster(seed=3)[:100])
        assert np.all((scores > 0) & (scores < 1))

    def test_predict_threshold(self):
        forest = IsolationForest(
            n_trees=50, rng=np.random.default_rng(1)
        ).fit(cluster())
        labels = forest.predict(np.full((5, 3), 8.0), threshold=0.55)
        assert np.all(labels == -1)

    def test_score_before_fit(self):
        with pytest.raises(RuntimeError):
            IsolationForest().score_samples(np.zeros((2, 3)))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            IsolationForest(n_trees=0)
        with pytest.raises(ValueError):
            IsolationForest(sample_size=1)
        with pytest.raises(ValueError):
            IsolationForest().fit(np.zeros((1, 3)))

    def test_deterministic(self):
        data = cluster()
        probes = cluster(seed=9)[:20]
        scores = []
        for _ in range(2):
            forest = IsolationForest(
                n_trees=20, rng=np.random.default_rng(5)
            ).fit(data)
            scores.append(forest.score_samples(probes))
        assert np.allclose(scores[0], scores[1])

    def test_small_sample_size_capped(self):
        data = cluster(n=20)
        forest = IsolationForest(
            n_trees=10, sample_size=256,
            rng=np.random.default_rng(0),
        ).fit(data)
        assert forest.score_samples(data).shape == (20,)

    def test_constant_features_handled(self):
        data = np.ones((50, 3))
        forest = IsolationForest(
            n_trees=10, rng=np.random.default_rng(0)
        ).fit(data)
        scores = forest.score_samples(data)
        assert np.all(np.isfinite(scores))
