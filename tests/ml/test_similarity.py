"""Tests for repro.ml.similarity."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.similarity import cosine_similarity, pairwise_cosine

vectors = arrays(
    np.float64,
    (6,),
    elements=st.floats(min_value=-100, max_value=100),
)


class TestCosineSimilarity:
    def test_identical(self):
        v = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine_similarity(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        ) == pytest.approx(0.0)

    def test_opposite(self):
        v = np.array([1.0, 1.0])
        assert cosine_similarity(v, -v) == pytest.approx(-1.0)

    def test_scale_invariant(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([0.5, 0.1, 0.9])
        assert cosine_similarity(a, b) == pytest.approx(
            cosine_similarity(10 * a, 0.01 * b)
        )

    def test_zero_vector_defined_as_zero(self):
        assert cosine_similarity(
            np.zeros(3), np.array([1.0, 0, 0])
        ) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            cosine_similarity(np.zeros(3), np.zeros(4))

    @given(vectors, vectors)
    def test_bounded(self, a, b):
        value = cosine_similarity(a, b)
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9

    @given(vectors, vectors)
    def test_symmetric(self, a, b):
        assert cosine_similarity(a, b) == pytest.approx(
            cosine_similarity(b, a)
        )


class TestPairwiseCosine:
    def test_diagonal_ones(self):
        rng = np.random.default_rng(0)
        matrix = rng.standard_normal((5, 4))
        sims = pairwise_cosine(matrix)
        assert np.allclose(np.diag(sims), 1.0)

    def test_matches_scalar_version(self):
        rng = np.random.default_rng(1)
        matrix = rng.standard_normal((4, 3))
        sims = pairwise_cosine(matrix)
        for i in range(4):
            for j in range(4):
                assert sims[i, j] == pytest.approx(
                    cosine_similarity(matrix[i], matrix[j])
                )

    def test_zero_row_isolated(self):
        matrix = np.array([[1.0, 0.0], [0.0, 0.0]])
        sims = pairwise_cosine(matrix)
        assert sims[1, 0] == 0.0 and sims[0, 1] == 0.0
        assert sims[1, 1] == 0.0

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            pairwise_cosine(np.zeros(3))
