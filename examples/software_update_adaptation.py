#!/usr/bin/env python3
"""Scenario: surviving a software update with transfer learning.

A software update changes the syslog distribution abruptly
(section 3.3 of the paper): month-over-month cosine similarity
collapses and a stale model's false alarms explode.  This example
shows the paper's remedy — copy the pre-update *teacher* model into a
*student* and fine-tune the top layers on ONE WEEK of post-update
logs — and compares it against doing nothing.

    python examples/software_update_adaptation.py
"""

from __future__ import annotations

import numpy as np

from repro.core.adaptation import distribution_shift
from repro.core.detector import LSTMAnomalyDetector
from repro.core.thresholds import sweep_thresholds
from repro.evaluation.metrics import best_operating_point
from repro.logs.templates import TemplateStore
from repro.synthesis import FleetSimulator, SimulationConfig
from repro.timeutil import DAY, MONTH


def best_f(detector, dataset, vpes, start, end):
    streams = {
        vpe: detector.score(dataset.messages_between(vpe, start, end))
        for vpe in vpes
    }
    tickets = [
        t
        for t in dataset.tickets_for(start=start, end=end)
        if t.vpe in set(vpes)
    ]
    curve = sweep_thresholds(streams, tickets, n_thresholds=15)
    return best_operating_point(curve)


def main() -> None:
    print("simulating a deployment with a software update in month 2")
    config = SimulationConfig(
        n_vpes=4,
        n_months=4,
        seed=5,
        base_rate_per_hour=8.0,
        update_month=2,
        update_fraction=1.0,   # every vPE gets the update
        n_fleet_events=0,
    )
    dataset = FleetSimulator(config).run()
    update = dataset.updates[0]
    vpes = dataset.vpe_names

    # Teacher: trained on the two pre-update months.
    store = TemplateStore().fit(
        dataset.aggregate_messages(end=update.time, normal_only=True)[
            :30000
        ]
    )
    teacher = LSTMAnomalyDetector(
        store,
        vocabulary_capacity=128,
        window=8,
        hidden=(24, 24),
        epochs=2,
        max_train_samples=6000,
        seed=0,
    )
    print("training the teacher on pre-update months ...")
    teacher.fit_streams([
        dataset.normal_messages(vpe, dataset.start, update.time)
        for vpe in vpes
    ])

    # Quantify the distribution shift the update causes.
    before = store.transform(
        dataset.aggregate_messages(
            start=update.time - MONTH, end=update.time,
            normal_only=True,
        )
    )
    after = store.transform(
        dataset.aggregate_messages(
            start=update.time, end=update.time + 7 * DAY,
            normal_only=True,
        )
    )
    shift = distribution_shift(
        before, after, store.vocabulary_size
    )
    print(
        f"month-over-month cosine similarity at the update: "
        f"{shift:.2f} (normal operation stays > 0.8)"
    )

    # Student: teacher weights + one week of post-update fine-tuning.
    week = [
        dataset.normal_messages(
            vpe, update.time, update.time + 7 * DAY
        )
        for vpe in vpes
    ]
    print("adapting the student on one week of post-update logs ...")
    student = teacher.adapt_streams(week)

    # Compare on the final month (fully post-update).
    eval_start = dataset.start + 3 * MONTH
    stale = best_f(teacher, dataset, vpes, eval_start, dataset.end)
    adapted = best_f(student, dataset, vpes, eval_start, dataset.end)
    print("\npost-update detection quality (final month):")
    print(
        f"  stale teacher   P={stale.precision:.2f} "
        f"R={stale.recall:.2f} F={stale.f_measure:.2f}"
    )
    print(
        f"  adapted student P={adapted.precision:.2f} "
        f"R={adapted.recall:.2f} F={adapted.f_measure:.2f}"
    )
    if adapted.f_measure > stale.f_measure:
        print(
            "\none week of fine-tuning recovered the model - the "
            "paper's 3-month retraining window is not needed."
        )


if __name__ == "__main__":
    main()
