#!/usr/bin/env python3
"""Scenario: triaging detected anomalies like a network operator.

Section 5.3 of the paper categorizes detected conditions into four
operational scenarios: (1) true predictive signals (e.g. the
"invalid response from peer chassis-control" message preceding
tickets), (2) conditions convertible into early-detection signatures
(e.g. a storm of "BGP UNUSABLE ASPATH" rejections), (3) events that
are part of the ticketing flow itself, and (4) coincidental anomalies.

This example detects anomalies on a simulated trace, inspects the
*template text* behind each warning cluster, and produces the kind of
triage report an operator would read.

    python examples/operational_findings.py
"""

from __future__ import annotations

from collections import Counter, defaultdict

import numpy as np

from repro.core.detector import LSTMAnomalyDetector
from repro.core.mapping import (
    AnomalyKind,
    map_anomalies,
    warning_clusters,
)
from repro.core.thresholds import sweep_thresholds
from repro.evaluation.metrics import best_operating_point
from repro.logs.templates import TemplateStore
from repro.synthesis import FleetSimulator, SimulationConfig
from repro.timeutil import MINUTE, MONTH, format_duration


def main() -> None:
    print("simulating a 4-vPE deployment ...")
    config = SimulationConfig(
        n_vpes=4,
        n_months=2,
        seed=9,
        base_rate_per_hour=8.0,
        update_month=None,
        n_fleet_events=0,
    )
    dataset = FleetSimulator(config).run()

    month0_end = dataset.start + MONTH
    training_streams = [
        dataset.normal_messages(vpe, dataset.start, month0_end)
        for vpe in dataset.vpe_names
    ]
    training = [m for s in training_streams for m in s]
    training.sort(key=lambda m: m.timestamp)
    store = TemplateStore().fit(training)
    detector = LSTMAnomalyDetector(
        store,
        vocabulary_capacity=128,
        window=8,
        hidden=(24, 24),
        epochs=2,
        max_train_samples=5000,
        seed=0,
    )
    print("training the detector ...")
    detector.fit_streams(training_streams)

    # Score the test month and keep the per-message streams so we can
    # recover the text behind each detection.
    test_messages = {
        vpe: dataset.messages_between(vpe, month0_end, dataset.end)
        for vpe in dataset.vpe_names
    }
    streams = {
        vpe: detector.score(messages)
        for vpe, messages in test_messages.items()
    }
    tickets = dataset.tickets_for(start=month0_end)
    threshold = best_operating_point(
        sweep_thresholds(streams, tickets, n_thresholds=20)
    ).threshold

    detections = {
        vpe: warning_clusters(stream.anomalies(threshold))
        for vpe, stream in streams.items()
    }
    mapping = map_anomalies(detections, tickets)

    # Recover the message text nearest each warning cluster.
    def texts_near(vpe, when, radius=2 * MINUTE):
        return [
            m.text
            for m in test_messages[vpe]
            if abs(m.timestamp - when) <= radius
            and (m.template_id or 1)  # raw stream: no annotation
        ]

    print("\n=== operator triage report ===")
    by_kind = defaultdict(list)
    for record in mapping.records:
        by_kind[record.kind].append(record)

    for record in by_kind[AnomalyKind.EARLY_WARNING][:5]:
        texts = texts_near(record.vpe, record.time)
        keyword = Counter(
            t.split(":")[0] for t in texts
        ).most_common(1)
        label = keyword[0][0] if keyword else "(quiet window)"
        print(
            f"[predictive] {record.vpe}: '{label}' storm "
            f"{format_duration(record.lead_time)} before "
            f"{record.ticket.root_cause.value} ticket "
            f"#{record.ticket.ticket_id}"
        )

    for record in by_kind[AnomalyKind.ERROR][:3]:
        print(
            f"[in-ticket]  {record.vpe}: anomaly during open "
            f"{record.ticket.root_cause.value} ticket "
            f"#{record.ticket.ticket_id} - candidate for faster "
            "detection signatures"
        )

    for record in by_kind[AnomalyKind.FALSE_ALARM][:3]:
        texts = texts_near(record.vpe, record.time)
        keyword = Counter(
            t.split(":")[0] for t in texts
        ).most_common(1)
        label = keyword[0][0] if keyword else "(unknown)"
        print(
            f"[coincident] {record.vpe}: '{label}' cluster matches "
            "no ticket - candidate for a suppression rule"
        )

    counts = mapping.counts
    print(
        f"\nsummary: {counts.true_anomalies} ticket-related warning "
        f"clusters, {counts.false_alarms} false alarms, "
        f"{counts.tickets_detected}/{counts.tickets_total} tickets "
        "covered"
    )


if __name__ == "__main__":
    main()
