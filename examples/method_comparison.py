#!/usr/bin/env python3
"""Scenario: head-to-head comparison of anomaly-detection methods.

Section 5.2 of the paper compares its LSTM against an autoencoder and
a one-class SVM.  This example runs all of them — plus the PCA and
isolation-forest reference methods this library adds — on one
simulated trace with identical training data and the same evaluation,
and prints the Figure 6-style leaderboard.

    python examples/method_comparison.py
"""

from __future__ import annotations

import time

from repro.core.baselines import (
    AutoencoderDetector,
    IsolationForestDetector,
    OneClassSvmDetector,
    PcaDetector,
)
from repro.core.detector import LSTMAnomalyDetector
from repro.core.thresholds import sweep_thresholds
from repro.evaluation.metrics import auc_pr, best_operating_point
from repro.evaluation.reporting import format_table
from repro.logs.templates import TemplateStore
from repro.synthesis import FleetSimulator, SimulationConfig
from repro.timeutil import MONTH


def build_detectors(store):
    """One of each method, sized for a laptop run."""
    return {
        "LSTM (paper)": LSTMAnomalyDetector(
            store, vocabulary_capacity=128, window=8,
            hidden=(24, 24), epochs=2, max_train_samples=5000,
            seed=0,
        ),
        "GRU": LSTMAnomalyDetector(
            store, vocabulary_capacity=128, window=8,
            hidden=(24, 24), epochs=2, max_train_samples=5000,
            cell="gru", seed=0,
        ),
        "Autoencoder": AutoencoderDetector(
            store, vocabulary_capacity=128, epochs=8,
            max_train_windows=4000, seed=0,
        ),
        "One-class SVM": OneClassSvmDetector(
            store, vocabulary_capacity=128,
            max_train_windows=4000, seed=0,
        ),
        "PCA (Xu et al.)": PcaDetector(
            store, vocabulary_capacity=128,
            max_train_windows=4000, seed=0,
        ),
        "Isolation forest": IsolationForestDetector(
            store, vocabulary_capacity=128, n_trees=60,
            max_train_windows=4000, seed=0,
        ),
    }


def main() -> None:
    print("simulating a 4-vPE, 3-month deployment ...")
    config = SimulationConfig(
        n_vpes=4,
        n_months=3,
        seed=13,
        base_rate_per_hour=8.0,
        update_month=None,
        n_fleet_events=0,
    )
    dataset = FleetSimulator(config).run()

    month0_end = dataset.start + MONTH
    training_streams = [
        dataset.normal_messages(vpe, dataset.start, month0_end)
        for vpe in dataset.vpe_names
    ]
    training = [m for s in training_streams for m in s]
    training.sort(key=lambda m: m.timestamp)
    store = TemplateStore().fit(training)
    test_streams = {
        vpe: dataset.messages_between(vpe, month0_end, dataset.end)
        for vpe in dataset.vpe_names
    }
    tickets = dataset.tickets_for(start=month0_end)
    print(
        f"training on {len(training):,} normal messages; evaluating "
        f"against {len(tickets)} tickets over 2 months\n"
    )

    rows = []
    for name, detector in build_detectors(store).items():
        started = time.perf_counter()
        detector.fit_streams(training_streams)
        train_time = time.perf_counter() - started
        streams = {
            vpe: detector.score(messages)
            for vpe, messages in test_streams.items()
        }
        curve = sweep_thresholds(streams, tickets, n_thresholds=20)
        op = best_operating_point(curve)
        rows.append(
            [
                name,
                f"{op.precision:.2f}",
                f"{op.recall:.2f}",
                f"{op.f_measure:.2f}",
                f"{auc_pr(curve):.3f}",
                f"{train_time:.1f}s",
            ]
        )
    rows.sort(key=lambda row: -float(row[3]))
    print(
        format_table(
            ["method", "precision", "recall", "F", "AUC-PR",
             "train time"],
            rows,
            title="method comparison (cf. paper Figure 6)",
        )
    )
    print(
        "\nnote: at this toy scale (a handful of tickets, one "
        "training month)\nrankings vary by seed.  The paper-scale "
        "comparison, with monthly\nincremental training, grouping and "
        "adaptation, is the Figure 6\nbenchmark: pytest "
        "benchmarks/test_fig6_method_comparison.py"
    )


if __name__ == "__main__":
    main()
