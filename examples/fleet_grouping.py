#!/usr/bin/env python3
"""Scenario: grouping a diverse vPE fleet for model customization.

Section 4.3 of the paper: syslog distributions differ per vPE, so a
universal model sacrifices accuracy, while fully per-vPE models
multiply the training-data requirement.  K-means over per-vPE template
distributions (K chosen by modularity) finds the middle ground — the
paper's dataset yields 4 clusters.

This example clusters a simulated fleet, shows that the recovered
groups track the synthetic *role* ground truth, and quantifies the
training-data saving.

    python examples/fleet_grouping.py
"""

from __future__ import annotations

from collections import Counter

from repro.core.grouping import group_vpes
from repro.features.counts import template_distribution
from repro.logs.templates import TemplateStore
from repro.ml.similarity import cosine_similarity
from repro.synthesis import FleetSimulator, SimulationConfig
from repro.timeutil import MONTH


def main() -> None:
    print("simulating a 12-vPE fleet (4 hidden roles) ...")
    config = SimulationConfig(
        n_vpes=12,
        n_months=1,
        seed=2,
        base_rate_per_hour=8.0,
        update_month=None,
        n_fleet_events=0,
    )
    dataset = FleetSimulator(config).run()

    month0 = dataset.start + MONTH
    store = TemplateStore().fit(
        dataset.aggregate_messages(end=month0, normal_only=True)[
            :30000
        ]
    )

    per_vpe = {
        vpe: dataset.normal_messages(vpe, dataset.start, month0)
        for vpe in dataset.vpe_names
    }
    print("clustering vPEs by template distribution "
          "(K chosen by modularity) ...")
    grouping = group_vpes(per_vpe, store, k=None,
                          candidates=(2, 3, 4, 5, 6))
    print(f"selected K = {grouping.k}")

    roles = {p.name: p.role for p in dataset.profiles}
    for group, members in sorted(grouping.groups.items()):
        role_mix = Counter(roles[vpe] for vpe in members)
        dominant, count = role_mix.most_common(1)[0]
        purity = count / len(members)
        print(
            f"  group {group}: {', '.join(members)}"
            f"  (dominant role: {dominant}, purity {purity:.0%})"
        )

    # How much more similar are vPEs within a group than across?
    distributions = {
        vpe: template_distribution(
            store.transform(messages), store.vocabulary_size
        )
        for vpe, messages in per_vpe.items()
    }
    within, across = [], []
    names = dataset.vpe_names
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            sim = cosine_similarity(
                distributions[a], distributions[b]
            )
            if grouping.group_of(a) == grouping.group_of(b):
                within.append(sim)
            else:
                across.append(sim)
    print(
        f"\nmean cosine similarity within groups:  "
        f"{sum(within) / len(within):.3f}"
    )
    print(
        f"mean cosine similarity across groups:  "
        f"{sum(across) / len(across):.3f}"
    )

    # Training-data economics of grouping.
    solo = len(per_vpe[names[0]])
    grouped = sum(
        len(per_vpe[vpe])
        for vpe in grouping.members(grouping.group_of(names[0]))
    )
    print(
        f"\n{names[0]} alone contributes {solo:,} training messages "
        f"per month;\nits group pools {grouped:,} — "
        f"{grouped / solo:.1f}x the data from the same calendar time."
    )
    print(
        "That multiplier is why the paper needs only 1 month of "
        "data with clustering\ninstead of 3 months without."
    )


if __name__ == "__main__":
    main()
