#!/usr/bin/env python3
"""Quickstart: simulate a small NFV deployment, train the LSTM anomaly
detector on one month of normal syslogs, and detect anomalies that
precede trouble tickets.

Runs in about a minute on a laptop::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core.detector import LSTMAnomalyDetector
from repro.core.mapping import map_anomalies, warning_clusters
from repro.core.thresholds import sweep_thresholds
from repro.evaluation.metrics import best_operating_point
from repro.logs.templates import TemplateStore
from repro.synthesis import FleetSimulator, SimulationConfig
from repro.timeutil import MONTH, format_duration


def main() -> None:
    # 1. Simulate a small deployment: 4 vPEs, 2 months of syslogs,
    #    faults, maintenance and the resulting trouble tickets.
    print("simulating a 4-vPE, 2-month NFV deployment ...")
    config = SimulationConfig(
        n_vpes=4,
        n_months=2,
        seed=1,
        base_rate_per_hour=8.0,
        update_month=None,   # no software update in the quickstart
        n_fleet_events=0,
    )
    dataset = FleetSimulator(config).run()
    print(
        f"  {dataset.n_messages:,} syslog messages, "
        f"{len(dataset.tickets)} trouble tickets"
    )

    # 2. Mine syslog templates with the signature tree and train the
    #    LSTM language model on month 0's ticket-free logs.
    month0_end = dataset.start + MONTH
    training_streams = [
        dataset.normal_messages(vpe, dataset.start, month0_end)
        for vpe in dataset.vpe_names
    ]
    training = [m for s in training_streams for m in s]
    training.sort(key=lambda m: m.timestamp)
    store = TemplateStore().fit(training)
    print(f"  mined {store.vocabulary_size - 1} syslog templates")

    detector = LSTMAnomalyDetector(
        store,
        vocabulary_capacity=128,
        window=8,
        hidden=(24, 24),
        epochs=2,
        max_train_samples=5000,
        seed=0,
    )
    print("training the LSTM detector on normal logs ...")
    detector.fit_streams(training_streams)

    # 3. Score month 1 and pick the threshold that maximizes the
    #    F-measure against the month's trouble tickets.
    streams = {
        vpe: detector.score(
            dataset.messages_between(vpe, month0_end, dataset.end)
        )
        for vpe in dataset.vpe_names
    }
    tickets = dataset.tickets_for(start=month0_end)
    curve = sweep_thresholds(streams, tickets, n_thresholds=20)
    operating = best_operating_point(curve)
    print(
        f"operating point: precision={operating.precision:.2f} "
        f"recall={operating.recall:.2f} F={operating.f_measure:.2f}"
    )

    # 4. Report warning signatures (clusters of >= 2 anomalies) and
    #    how far ahead of each ticket they fired.
    detections = {
        vpe: warning_clusters(
            stream.anomalies(operating.threshold)
        )
        for vpe, stream in streams.items()
    }
    mapping = map_anomalies(detections, tickets)
    print(f"\n{'ticket':<28} {'cause':<12} earliest warning")
    for ticket in tickets:
        hits = mapping.ticket_hits.get(ticket.ticket_id, [])
        if hits:
            lead = max(hit.lead_time for hit in hits)
            when = (
                f"{format_duration(lead)} before report"
                if lead >= 0
                else f"{format_duration(-lead)} after report"
            )
        else:
            when = "missed"
        label = f"{ticket.vpe}#{ticket.ticket_id}"
        print(f"{label:<28} {ticket.root_cause.value:<12} {when}")


if __name__ == "__main__":
    main()
