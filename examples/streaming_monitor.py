#!/usr/bin/env python3
"""Scenario: the runtime predictive-analysis system.

The paper's abstract envisions "a runtime predictive analysis system
running in parallel with existing reactive monitoring systems to
provide network operators timely warnings against faulty conditions".
This example runs exactly that: an :class:`OnlineMonitor` consumes a
day of syslog messages one at a time and pages the operator the moment
a warning-signature cluster forms — then compares each page's
timestamp with the ticket the reactive flow eventually opened.

    python examples/streaming_monitor.py
"""

from __future__ import annotations

import numpy as np

from repro.core.detector import LSTMAnomalyDetector
from repro.core.online import OnlineMonitor
from repro.logs.templates import TemplateStore
from repro.synthesis import FleetSimulator, SimulationConfig
from repro.timeutil import MONTH, format_duration


def main() -> None:
    print("simulating a 4-vPE deployment ...")
    config = SimulationConfig(
        n_vpes=4,
        n_months=2,
        seed=21,
        base_rate_per_hour=8.0,
        update_month=None,
        n_fleet_events=0,
    )
    dataset = FleetSimulator(config).run()

    month0_end = dataset.start + MONTH
    training_streams = [
        dataset.normal_messages(vpe, dataset.start, month0_end)
        for vpe in dataset.vpe_names
    ]
    training = [m for s in training_streams for m in s]
    training.sort(key=lambda m: m.timestamp)
    store = TemplateStore().fit(training)
    detector = LSTMAnomalyDetector(
        store,
        vocabulary_capacity=128,
        window=8,
        hidden=(24, 24),
        epochs=2,
        max_train_samples=5000,
        seed=0,
    )
    print("training the detector on month 0 ...")
    detector.fit_streams(training_streams)

    # Pick the alert threshold from the training data's score tail.
    calibration = detector.score(training[:20000])
    threshold = float(np.quantile(calibration.scores, 0.999)) + 0.5

    monitor = OnlineMonitor(
        detector, threshold, cluster_min_size=2
    )
    print("streaming month 1 through the online monitor ...\n")
    live = dataset.aggregate_messages(start=month0_end)
    warnings = monitor.run(live)

    tickets = dataset.tickets_for(start=month0_end)
    print(f"{'warning':<24} {'device':<8} relation to tickets")
    for warning in warnings:
        related = [
            t
            for t in tickets
            if t.vpe == warning.vpe
            and t.report_time - 86400 <= warning.time <= t.repair_time
        ]
        if related:
            ticket = min(related, key=lambda t: t.report_time)
            delta = ticket.report_time - warning.time
            relation = (
                f"{format_duration(delta)} BEFORE "
                f"{ticket.root_cause.value} ticket"
                if delta >= 0
                else f"{format_duration(-delta)} after "
                f"{ticket.root_cause.value} ticket opened"
            )
        else:
            relation = "no ticket (false alarm)"
        stamp = f"t+{format_duration(warning.time - month0_end)}"
        print(f"{stamp:<24} {warning.vpe:<8} {relation}")

    pages_per_day = len(warnings) / 30.0
    print(
        f"\n{monitor.n_observed:,} messages streamed, "
        f"{monitor.n_anomalies} anomalous, "
        f"{len(warnings)} operator pages "
        f"({pages_per_day:.1f}/day fleet-wide)"
    )


if __name__ == "__main__":
    main()
